//! Expected-flow evaluation over the F-tree, and non-mutating edge probes.
//!
//! Because an articulation vertex separates its component from the rest of
//! the selected subgraph, `Pr[v ↔ Q] = Pr[v ↔ AV | component] · Pr[AV ↔ Q]`
//! with independent factors; flow therefore aggregates in one top-down pass,
//! multiplying component-local reaches along the tree (Theorem 2 + Lemma 1).
//!
//! Probing (`probe_edge`) evaluates the flow a candidate insertion *would*
//! yield, at minimal cost per structural case:
//!
//! * **Case II** (leaf): an `O(depth)` analytic delta — no sampling, no copy;
//! * **Case IIIa** (cycle in a bi component): only that component is
//!   re-estimated; flow is evaluated with the fresh estimate *overriding* the
//!   stored one — no tree mutation;
//! * **Cases IIIb/IV** (structural): the probe applies the insertion to the
//!   *shared* tree through the undo journal ([`FTree::apply`]), evaluates,
//!   and rolls back bit-identically ([`FTree::rollback`]) — `O(touched
//!   components)` per probe instead of the historical whole-tree clone.
//!   The clone-based path survives only as the pinned reference
//!   ([`FTree::probe_plan_cloning`]) that benchmarks and equivalence tests
//!   compare against.

use flowmax_graph::{EdgeId, ProbabilisticGraph, VertexId};
use flowmax_sampling::{ComponentEstimate, ComponentGraph};

use super::{ComponentId, FTree, InsertCase, Kind};
use crate::error::CoreError;
use crate::estimator::EstimateProvider;

/// How per-vertex reach is read during a flow traversal. (Probe scoring
/// uses the fused three-accumulator traversal [`FTree::flow_triple`]
/// instead — one pass yields point + both bounds.)
enum ReachView {
    /// The tree's stored estimates.
    Stored,
    /// Evaluate one component at its confidence bounds (post-insert bounds
    /// for structural probes).
    Bound {
        cid: ComponentId,
        alpha: f64,
        upper: bool,
    },
}

/// Result of probing a candidate edge without committing it (§6.1 Eq. 5).
#[derive(Debug, Clone, Copy)]
pub struct ProbeOutcome {
    /// Expected flow of the tree *with* the candidate inserted.
    pub flow: f64,
    /// Candidate-specific lower flow bound (`== flow` for analytic probes).
    pub lower: f64,
    /// Candidate-specific upper flow bound (`== flow` for analytic probes).
    pub upper: f64,
    /// The structural case the insertion would take.
    pub case: InsertCase,
    /// `cost(e)` of §6.4: edges that had to be sampled to answer the probe.
    pub sampling_cost_edges: usize,
}

/// A probe split into its deterministic part and its deferred estimation —
/// the shape the §6.3 racing engine needs: the structural classification
/// (leaf deltas, component snapshots) happens **once**, and the probe is
/// then [`score`](SampledProbe::score)d repeatedly as its component
/// estimate grows across race rounds.
#[derive(Debug)]
pub enum ProbePlan {
    /// Fully analytic (leaf) probe: the outcome is already exact.
    Analytic(ProbeOutcome),
    /// The probe needs exactly one component estimate before it can be
    /// scored (boxed to keep the analytic arm small).
    Sampled(Box<SampledProbe>),
}

/// The deferred half of a sampled probe: which component must be estimated,
/// and how to turn an estimate into a flow score.
///
/// Journal-based structural plans hold only the candidate edge — scoring
/// re-applies it to the shared tree via the undo journal and rolls back.
/// The plan is therefore only valid while the tree it was created from is
/// unchanged (the invariant every selection iteration already maintains).
#[derive(Debug)]
pub struct SampledProbe {
    snapshot: ComponentGraph,
    cost_edges: usize,
    kind: SampledKind,
}

#[derive(Debug)]
enum SampledKind {
    /// Case IIIa: re-estimate one existing bi component; flow is evaluated
    /// on the *original* tree with the estimate overriding the stored one.
    InBi { cid: ComponentId },
    /// Cases IIIb/IV, journal-based (the default): scoring applies the
    /// candidate to the shared tree, evaluates, and rolls back — no clone.
    Structural { edge: EdgeId, case: InsertCase },
    /// Cases IIIb/IV, the pinned clone-based reference: the probe's tree
    /// clone with the candidate inserted and the estimate still pending.
    /// Kept selectable so benchmarks and tests can compare engines (boxed:
    /// the journal variants carry no tree).
    StructuralCloned {
        tree: Box<FTree>,
        cid: ComponentId,
        case: InsertCase,
    },
}

impl SampledProbe {
    /// The component snapshot that must be estimated (candidate edge
    /// included).
    pub fn snapshot(&self) -> &ComponentGraph {
        &self.snapshot
    }

    /// `cost(e)` of §6.4: the number of edges the estimate must sample.
    pub fn sampling_cost_edges(&self) -> usize {
        self.cost_edges
    }

    /// The structural case the insertion would take.
    pub fn case(&self) -> InsertCase {
        match &self.kind {
            SampledKind::InBi { .. } => InsertCase::CycleInBi,
            SampledKind::Structural { case, .. } => *case,
            SampledKind::StructuralCloned { case, .. } => *case,
        }
    }

    /// Scores the probe under `estimate`: the flow the tree would have with
    /// the candidate inserted, plus the candidate-specific `1 − α` bounds.
    ///
    /// Callable repeatedly — racing rounds re-score with growing-budget
    /// estimates; only the latest call's estimate is retained. `tree` must
    /// be the tree the plan was created from, **unchanged since** — a
    /// journal-based structural score applies the candidate to it and rolls
    /// back before returning, so the tree reads unmodified afterwards.
    pub fn score(
        &mut self,
        tree: &mut FTree,
        graph: &ProbabilisticGraph,
        include_query: bool,
        alpha: f64,
        estimate: ComponentEstimate,
    ) -> ProbeOutcome {
        match &mut self.kind {
            SampledKind::InBi { cid } => {
                let (flow, lower, upper) = tree.flow_with_override_bounds(
                    graph,
                    include_query,
                    *cid,
                    &self.snapshot,
                    &estimate,
                    alpha,
                );
                ProbeOutcome {
                    flow,
                    lower,
                    upper,
                    case: InsertCase::CycleInBi,
                    sampling_cost_edges: self.cost_edges,
                }
            }
            SampledKind::Structural { edge, case } => {
                // Apply → evaluate → rollback on the shared tree. The
                // supplied provider hands the insertion its estimate
                // directly, so no sampling and no tree clone happens here.
                let mut supplied = SuppliedProvider {
                    estimate: Some(estimate),
                };
                let (report, journal) = tree
                    .apply(graph, *edge, &mut supplied)
                    .expect("plan stays applicable while the tree is unchanged");
                let cid = report
                    .component
                    .expect("cycle insertions always produce a bi component");
                let (flow, lower, upper) = tree.flow_with_bounds(graph, include_query, cid, alpha);
                tree.rollback(journal);
                ProbeOutcome {
                    flow,
                    lower,
                    upper,
                    case: *case,
                    sampling_cost_edges: self.cost_edges,
                }
            }
            SampledKind::StructuralCloned {
                tree: clone,
                cid,
                case,
            } => {
                clone.set_bi_estimate(*cid, estimate);
                let (flow, lower, upper) =
                    clone.flow_with_bounds(graph, include_query, *cid, alpha);
                ProbeOutcome {
                    flow,
                    lower,
                    upper,
                    case: *case,
                    sampling_cost_edges: self.cost_edges,
                }
            }
        }
    }
}

/// Captures the single component snapshot a structural probe insertion
/// estimates, returning a placeholder so the estimate can be supplied
/// later.
#[derive(Default)]
struct CaptureProvider {
    snapshot: Option<ComponentGraph>,
}

impl EstimateProvider for CaptureProvider {
    fn estimate(&mut self, snapshot: &ComponentGraph) -> ComponentEstimate {
        assert!(
            self.snapshot.is_none(),
            "a structural probe estimates exactly one component"
        );
        self.snapshot = Some(snapshot.clone());
        ComponentEstimate::placeholder(snapshot.vertex_count())
    }
}

/// Defers estimation without copying the snapshot: the fused
/// [`FTree::probe_edge`] path estimates the applied component's own
/// snapshot afterwards, so nothing needs capturing.
struct PlaceholderProvider;

impl EstimateProvider for PlaceholderProvider {
    fn estimate(&mut self, snapshot: &ComponentGraph) -> ComponentEstimate {
        ComponentEstimate::placeholder(snapshot.vertex_count())
    }
}

/// Hands a pre-computed estimate to the single component a structural
/// probe's re-apply forms (the score-time counterpart of
/// [`CaptureProvider`]).
struct SuppliedProvider {
    estimate: Option<ComponentEstimate>,
}

impl EstimateProvider for SuppliedProvider {
    fn estimate(&mut self, _snapshot: &ComponentGraph) -> ComponentEstimate {
        self.estimate
            .take()
            .expect("a structural probe estimates exactly one component")
    }
}

impl FTree {
    /// The expected information flow `E(flow(Q, G_selected))` under the
    /// tree's current component estimates (Def. 3 / Eq. 2).
    pub fn expected_flow(&self, graph: &ProbabilisticGraph, include_query: bool) -> f64 {
        self.flow_with(graph, include_query, &ReachView::Stored)
    }

    /// Lower/upper expected-flow bounds obtained by evaluating component
    /// `cid` at its per-vertex confidence bounds (every other component at
    /// its point estimate) — the candidate-specific uncertainty of §6.3.
    ///
    /// This two-pass form is the pinned reference for the fused
    /// [`FTree::flow_with_bounds`], which computes the point estimate and
    /// both bounds in one traversal; the `fused_bounds_match_reference`
    /// test holds them bit-identical.
    pub fn flow_bounds_for_component(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        cid: ComponentId,
        alpha: f64,
    ) -> (f64, f64) {
        let lo = self.flow_with(
            graph,
            include_query,
            &ReachView::Bound {
                cid,
                alpha,
                upper: false,
            },
        );
        let hi = self.flow_with(
            graph,
            include_query,
            &ReachView::Bound {
                cid,
                alpha,
                upper: true,
            },
        );
        (lo, hi)
    }

    /// `(point, lower, upper)` expected flow in **one** traversal, with
    /// component `cid` evaluated at its point estimate and its `1 − α`
    /// confidence bounds (every other component at its point estimate).
    ///
    /// Bit-identical to running [`FTree::expected_flow`] plus
    /// [`FTree::flow_bounds_for_component`] — the traversal order is purely
    /// structural, the three accumulators are independent, and the interval
    /// is a pure function of the stored counts — but three times cheaper:
    /// this is what every sampled probe pays per score, thousands of times
    /// per greedy iteration.
    pub(crate) fn flow_with_bounds(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        cid: ComponentId,
        alpha: f64,
    ) -> (f64, f64, f64) {
        self.flow_triple(graph, include_query, &|c, v| {
            let comp = self.comp(c);
            if v == comp.articulation {
                return (1.0, 1.0, 1.0);
            }
            if c != cid {
                let r = self.reach_in(c, v);
                return (r, r, r);
            }
            match &comp.kind {
                Kind::Mono { members } => {
                    let r = members[&v].reach;
                    (r, r, r)
                }
                Kind::Bi {
                    estimate, local, ..
                } => {
                    let l = local[&v] as usize;
                    let ci = estimate.interval(l, alpha);
                    (estimate.reach(l), ci.lower, ci.upper)
                }
            }
        })
    }

    /// The IIIa-probe counterpart of [`FTree::flow_with_bounds`]: component
    /// `cid`'s stored estimate is overridden by `(snapshot, estimate)` and
    /// evaluated at its point and `1 − α` bounds, in one traversal.
    fn flow_with_override_bounds(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        cid: ComponentId,
        snapshot: &ComponentGraph,
        estimate: &ComponentEstimate,
        alpha: f64,
    ) -> (f64, f64, f64) {
        self.flow_triple(graph, include_query, &|c, v| {
            let comp = self.comp(c);
            if v == comp.articulation {
                return (1.0, 1.0, 1.0);
            }
            if c != cid {
                let r = self.reach_in(c, v);
                return (r, r, r);
            }
            let local = snapshot
                .vertices()
                .iter()
                .position(|&x| x == v)
                .expect("override snapshot covers the component's vertices");
            let ci = estimate.interval(local, alpha);
            (estimate.reach(local), ci.lower, ci.upper)
        })
    }

    /// One top-down traversal accumulating three flow variants at once.
    /// `reach3(cid, v)` yields the `(point, lower, upper)` reach of `v`
    /// within `cid`; each accumulator sees exactly the operation sequence
    /// its solo [`FTree::flow_with`] traversal would, so the results are
    /// bit-identical to three separate passes.
    fn flow_triple(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        reach3: &dyn Fn(ComponentId, VertexId) -> (f64, f64, f64),
    ) -> (f64, f64, f64) {
        let base = if include_query {
            graph.weight(self.query).value()
        } else {
            0.0
        };
        let (mut t0, mut t1, mut t2) = (base, base, base);
        let mut stack: Vec<(ComponentId, f64, f64, f64)> =
            self.roots.iter().map(|&c| (c, 1.0, 1.0, 1.0)).collect();
        while let Some((cid, p0, p1, p2)) = stack.pop() {
            let comp = self.comp(cid);
            match &comp.kind {
                Kind::Mono { members } => {
                    for &v in members.keys() {
                        let (r0, r1, r2) = reach3(cid, v);
                        let w = graph.weight(v).value();
                        t0 += r0 * p0 * w;
                        t1 += r1 * p1 * w;
                        t2 += r2 * p2 * w;
                    }
                }
                Kind::Bi { local, .. } => {
                    for &v in local.keys() {
                        let (r0, r1, r2) = reach3(cid, v);
                        let w = graph.weight(v).value();
                        t0 += r0 * p0 * w;
                        t1 += r1 * p1 * w;
                        t2 += r2 * p2 * w;
                    }
                }
            }
            for &child in &comp.children {
                let cav = self.comp(child).articulation;
                let (r0, r1, r2) = reach3(cid, cav);
                stack.push((child, r0 * p0, r1 * p1, r2 * p2));
            }
        }
        (t0, t1, t2)
    }

    /// Reach of `v` inside component `cid` under a view.
    fn reach_in_view(&self, cid: ComponentId, v: VertexId, view: &ReachView) -> f64 {
        let comp = self.comp(cid);
        if v == comp.articulation {
            return 1.0;
        }
        match view {
            ReachView::Bound {
                cid: bcid,
                alpha,
                upper,
            } if *bcid == cid => match &comp.kind {
                Kind::Mono { members } => members[&v].reach,
                Kind::Bi {
                    estimate, local, ..
                } => {
                    let ci = estimate.interval(local[&v] as usize, *alpha);
                    if *upper {
                        ci.upper
                    } else {
                        ci.lower
                    }
                }
            },
            _ => self.reach_in(cid, v),
        }
    }

    /// One top-down traversal computing total expected flow under a view.
    fn flow_with(&self, graph: &ProbabilisticGraph, include_query: bool, view: &ReachView) -> f64 {
        let mut total = if include_query {
            graph.weight(self.query).value()
        } else {
            0.0
        };
        let mut stack: Vec<(ComponentId, f64)> = self.roots.iter().map(|&c| (c, 1.0)).collect();
        while let Some((cid, p_av)) = stack.pop() {
            let comp = self.comp(cid);
            match &comp.kind {
                Kind::Mono { members } => {
                    for &v in members.keys() {
                        let r = self.reach_in_view(cid, v, view);
                        total += r * p_av * graph.weight(v).value();
                    }
                }
                Kind::Bi { local, .. } => {
                    for &v in local.keys() {
                        let r = self.reach_in_view(cid, v, view);
                        total += r * p_av * graph.weight(v).value();
                    }
                }
            }
            for &child in &comp.children {
                let cav = self.comp(child).articulation;
                let r = self.reach_in_view(cid, cav, view);
                stack.push((child, r * p_av));
            }
        }
        total
    }

    /// Evaluates the flow the tree would have after inserting `e`, without
    /// committing the insertion (Eq. 5's probe).
    ///
    /// `base_flow` must be `self.expected_flow(graph, include_query)` — the
    /// caller computes it once per iteration and shares it across probes.
    /// The tree reads unmodified afterwards; structural candidates are
    /// evaluated with **one** journalled apply — the captured component
    /// snapshot is estimated and scored while the insertion is still
    /// applied, then rolled back — never by cloning. (The split
    /// [`FTree::probe_plan`] + [`SampledProbe::score`] form, which the
    /// racing engine needs, pays the apply twice; one-shot probes fuse it.)
    ///
    /// Returns candidate-specific confidence bounds alongside the point
    /// estimate: exact for analytic (leaf) probes, interval-derived for
    /// probes that sampled a component.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_edge(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
        include_query: bool,
        alpha: f64,
        provider: &mut dyn EstimateProvider,
    ) -> Result<ProbeOutcome, CoreError> {
        if matches!(self.classify_candidate(graph, e)?, ProbeClass::Structural) {
            // Fused structural probe: apply once, estimate the new
            // component's own snapshot in place, score, roll back — no
            // snapshot copy, no clone.
            let (report, journal) = self
                .apply(graph, e, &mut PlaceholderProvider)
                .expect("probe preconditions were just checked");
            let cid = report
                .component
                .expect("cycle insertions always produce a bi component");
            let estimate = {
                let Kind::Bi { snapshot, .. } = &self.comp(cid).kind else {
                    unreachable!("cycle insertions always produce a bi component")
                };
                provider.estimate(snapshot)
            };
            self.set_bi_estimate(cid, estimate);
            let (flow, lower, upper) = self.flow_with_bounds(graph, include_query, cid, alpha);
            self.rollback(journal);
            return Ok(ProbeOutcome {
                flow,
                lower,
                upper,
                case: report.case,
                sampling_cost_edges: report.sampled_edge_count,
            });
        }
        match self.probe_plan(graph, e, base_flow)? {
            ProbePlan::Analytic(outcome) => Ok(outcome),
            ProbePlan::Sampled(mut sampled) => {
                let estimate = provider.estimate(sampled.snapshot());
                Ok(sampled.score(self, graph, include_query, alpha, estimate))
            }
        }
    }

    /// Classifies candidate `e` (validating the probe preconditions); see
    /// [`ProbeClass`]. Every probe entry point goes through this.
    fn classify_candidate(
        &self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
    ) -> Result<ProbeClass, CoreError> {
        if self.selected.contains(e) {
            return Err(CoreError::EdgeAlreadySelected(e));
        }
        let (a, b) = graph.endpoints(e);
        let (a_in, b_in) = (self.contains_vertex(a), self.contains_vertex(b));
        match (a_in, b_in) {
            (false, false) => Err(CoreError::DisconnectedEdge {
                edge: e,
                endpoints: (a, b),
            }),
            (true, false) => Ok(ProbeClass::Leaf { anchor: a, leaf: b }),
            (false, true) => Ok(ProbeClass::Leaf { anchor: b, leaf: a }),
            (true, true) => {
                if let (Some(x), Some(y)) = (self.owner(a), self.owner(b)) {
                    if x == y && self.comp(x).is_bi() {
                        return Ok(ProbeClass::InBi { cid: x });
                    }
                }
                Ok(ProbeClass::Structural)
            }
        }
    }

    /// The deterministic half of [`FTree::probe_edge`]: classifies the
    /// candidate, resolves leaf probes analytically, and packages sampled
    /// probes (IIIa and structural) with the one component snapshot they
    /// need — without drawing a single sample. The racing engine builds one
    /// plan per candidate and re-[`score`](SampledProbe::score)s it as the
    /// candidate's estimate grows across rounds.
    ///
    /// Structural candidates are classified by a journalled apply +
    /// rollback on this tree (hence `&mut self`); the returned plan holds
    /// only the candidate edge and its component snapshot, and stays valid
    /// while the tree is unchanged — one selection iteration.
    ///
    /// `base_flow` must be `self.expected_flow(graph, include_query)`.
    pub fn probe_plan(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
    ) -> Result<ProbePlan, CoreError> {
        self.probe_plan_impl(graph, e, base_flow, false)
    }

    /// The pinned clone-based reference form of [`FTree::probe_plan`]: the
    /// pre-journal engine, kept selectable so equivalence tests and the
    /// `probe_churn` benchmark can compare probe engines edge-for-edge.
    /// Structural plans carry a full tree clone, exactly as before.
    pub fn probe_plan_cloning(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
    ) -> Result<ProbePlan, CoreError> {
        self.probe_plan_impl(graph, e, base_flow, true)
    }

    fn probe_plan_impl(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
        cloning: bool,
    ) -> Result<ProbePlan, CoreError> {
        match self.classify_candidate(graph, e)? {
            ProbeClass::Leaf { anchor, leaf } => {
                let p = graph.probability(e).value();
                let delta = graph.weight(leaf).value() * p * self.reach_to_query(anchor);
                let flow = base_flow + delta;
                let case = match self.owner(anchor) {
                    Some(cid) if self.comp(cid).is_bi() => InsertCase::LeafBi,
                    _ => InsertCase::LeafMono,
                };
                Ok(ProbePlan::Analytic(ProbeOutcome {
                    flow,
                    lower: flow,
                    upper: flow,
                    case,
                    sampling_cost_edges: 0,
                }))
            }
            ProbeClass::InBi { cid } => {
                // IIIa probe: only this component is re-estimated.
                let Kind::Bi { edges, .. } = &self.comp(cid).kind else {
                    unreachable!()
                };
                let mut probe_edges = edges.clone();
                probe_edges.push(e);
                let av = self.comp(cid).articulation;
                let mut scratch = std::mem::take(&mut self.local_scratch);
                let snapshot = ComponentGraph::build_with(graph, av, &probe_edges, &mut scratch);
                self.local_scratch = scratch;
                Ok(ProbePlan::Sampled(Box::new(SampledProbe {
                    snapshot,
                    cost_edges: probe_edges.len(),
                    kind: SampledKind::InBi { cid },
                })))
            }
            ProbeClass::Structural if cloning => {
                // Pinned reference: clone and insert now, estimate later.
                let mut clone = self.clone();
                let mut capture = CaptureProvider::default();
                let report = clone
                    .insert_edge(graph, e, &mut capture)
                    .expect("probe preconditions were just checked");
                let cid = report
                    .component
                    .expect("cycle insertions always produce a bi component");
                let snapshot = capture
                    .snapshot
                    .expect("cycle insertions estimate their new component");
                Ok(ProbePlan::Sampled(Box::new(SampledProbe {
                    snapshot,
                    cost_edges: report.sampled_edge_count,
                    kind: SampledKind::StructuralCloned {
                        tree: Box::new(clone),
                        cid,
                        case: report.case,
                    },
                })))
            }
            ProbeClass::Structural => {
                // Structural probe: journalled apply on the shared tree
                // captures the would-be component's snapshot, then rolls
                // back — no clone, cost proportional to the touched slots.
                let mut capture = CaptureProvider::default();
                let (report, journal) = self
                    .apply(graph, e, &mut capture)
                    .expect("probe preconditions were just checked");
                self.rollback(journal);
                let snapshot = capture
                    .snapshot
                    .expect("cycle insertions estimate their new component");
                Ok(ProbePlan::Sampled(Box::new(SampledProbe {
                    snapshot,
                    cost_edges: report.sampled_edge_count,
                    kind: SampledKind::Structural {
                        edge: e,
                        case: report.case,
                    },
                })))
            }
        }
    }
}

/// How a candidate probe is answered — the **single** classification shared
/// by the plan engines and the fused [`FTree::probe_edge`] path, so the two
/// can never drift apart.
enum ProbeClass {
    /// Case II: `leaf` is outside the tree, `anchor` inside — analytic.
    Leaf { anchor: VertexId, leaf: VertexId },
    /// Case IIIa inside bi component `cid` — override-scored, no mutation.
    InBi { cid: ComponentId },
    /// Cases IIIb/IV (plus the AV-adjacent IIIa probes routed the same
    /// way): a mutating insertion, probed through the journal or a clone.
    Structural,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{EstimatorConfig, SamplingProvider};
    use flowmax_graph::{
        exact_expected_flow, GraphBuilder, Probability, Weight, DEFAULT_ENUMERATION_CAP,
    };

    fn exact_provider() -> SamplingProvider {
        SamplingProvider::new(EstimatorConfig::exact(), 7)
    }

    /// Q(0)-1 (0.8), 1-2 (0.5), 2-0 (0.4), 2-3 (0.9), weights = id.
    fn graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        for w in 0..4 {
            b.add_vertex(Weight::new(w as f64).unwrap());
        }
        b.add_edge(VertexId(0), VertexId(1), Probability::new(0.8).unwrap())
            .unwrap();
        b.add_edge(VertexId(1), VertexId(2), Probability::new(0.5).unwrap())
            .unwrap();
        b.add_edge(VertexId(2), VertexId(0), Probability::new(0.4).unwrap())
            .unwrap();
        b.add_edge(VertexId(2), VertexId(3), Probability::new(0.9).unwrap())
            .unwrap();
        b.build()
    }

    #[test]
    fn flow_matches_exact_enumeration_with_exact_estimator() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        for e in 0..4 {
            t.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        let ftree_flow = t.expected_flow(&g, false);
        let exact = exact_expected_flow(
            &g,
            t.selected_edges(),
            VertexId(0),
            false,
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        assert!(
            (ftree_flow - exact).abs() < 1e-9,
            "decomposition must be exact: {ftree_flow} vs {exact}"
        );
    }

    #[test]
    fn include_query_adds_its_weight() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(2));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(3), &mut pr).unwrap();
        let without = t.expected_flow(&g, false);
        let with = t.expected_flow(&g, true);
        assert!(
            (with - without - 2.0).abs() < 1e-12,
            "W(Q)=2 must be the difference"
        );
    }

    #[test]
    fn leaf_probe_equals_commit() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut pr).unwrap();
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(3), base, false, 0.01, &mut pr)
            .unwrap();
        assert_eq!(probe.case, InsertCase::LeafMono);
        assert_eq!(probe.sampling_cost_edges, 0);
        assert_eq!(probe.lower, probe.flow);
        let mut t2 = t.clone();
        t2.insert_edge(&g, EdgeId(3), &mut pr).unwrap();
        let committed = t2.expected_flow(&g, false);
        assert!((probe.flow - committed).abs() < 1e-12);
    }

    #[test]
    fn structural_probe_equals_commit_with_exact_estimates() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut pr).unwrap();
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(2), base, false, 0.01, &mut pr)
            .unwrap();
        assert_eq!(probe.case, InsertCase::CycleAcross);
        assert!(probe.sampling_cost_edges > 0);
        let mut t2 = t.clone();
        t2.insert_edge(&g, EdgeId(2), &mut pr).unwrap();
        let committed = t2.expected_flow(&g, false);
        assert!((probe.flow - committed).abs() < 1e-12);
        // Probe must not have mutated the original.
        assert!((t.expected_flow(&g, false) - base).abs() < 1e-12);
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn iiia_probe_uses_override_without_mutation() {
        // Square + diagonal: insert square, probe diagonal.
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p).unwrap();
        b.add_edge(VertexId(3), VertexId(0), p).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p).unwrap();
        let g = b.build();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        for e in 0..4 {
            t.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(4), base, false, 0.01, &mut pr)
            .unwrap();
        assert_eq!(probe.case, InsertCase::CycleInBi);
        assert!(probe.flow > base, "diagonal adds paths");
        let mut t2 = t.clone();
        t2.insert_edge(&g, EdgeId(4), &mut pr).unwrap();
        assert!((probe.flow - t2.expected_flow(&g, false)).abs() < 1e-12);
        assert_eq!(t.edge_count(), 4, "probe must not commit");
    }

    #[test]
    fn fused_bounds_match_reference() {
        // The one-pass flow_with_bounds must equal expected_flow plus the
        // two-pass flow_bounds_for_component bit for bit, on a tree with a
        // genuinely sampled (non-degenerate) component.
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut mc = SamplingProvider::new(EstimatorConfig::monte_carlo(300), 9);
        for e in 0..4 {
            t.insert_edge(&g, EdgeId(e), &mut mc).unwrap();
        }
        let cid = t.component_of(VertexId(1)).expect("cycle component");
        for include_query in [false, true] {
            let (flow, lo, hi) = t.flow_with_bounds(&g, include_query, cid, 0.01);
            assert_eq!(flow.to_bits(), t.expected_flow(&g, include_query).to_bits());
            let (rlo, rhi) = t.flow_bounds_for_component(&g, include_query, cid, 0.01);
            assert_eq!(lo.to_bits(), rlo.to_bits());
            assert_eq!(hi.to_bits(), rhi.to_bits());
            assert!(lo < hi, "sampled component must have bound width");
        }
    }

    #[test]
    fn bounds_bracket_point_estimate_for_sampled_probes() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut mc = SamplingProvider::new(EstimatorConfig::monte_carlo(200), 3);
        t.insert_edge(&g, EdgeId(0), &mut mc).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut mc).unwrap();
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(2), base, false, 0.01, &mut mc)
            .unwrap();
        assert!(probe.lower <= probe.flow && probe.flow <= probe.upper);
        assert!(
            probe.upper - probe.lower > 0.0,
            "sampled probe must have width"
        );
    }

    #[test]
    fn probe_rejects_bad_edges() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        assert!(matches!(
            t.probe_edge(&g, EdgeId(0), 0.0, false, 0.01, &mut pr),
            Err(CoreError::EdgeAlreadySelected(_))
        ));
        assert!(matches!(
            t.probe_edge(&g, EdgeId(3), 0.0, false, 0.01, &mut pr),
            Err(CoreError::DisconnectedEdge { .. })
        ));
    }

    #[test]
    fn empty_tree_flow_is_query_weight_only() {
        let g = graph();
        let t = FTree::new(&g, VertexId(3));
        assert_eq!(t.expected_flow(&g, false), 0.0);
        assert_eq!(t.expected_flow(&g, true), 3.0);
    }
}
