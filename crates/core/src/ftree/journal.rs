//! The F-tree undo journal: clone-free structural mutation.
//!
//! Structural candidate probes (cases IIIb/IV of §5.4) need to know the
//! flow the tree *would* have after an insertion. The historical
//! implementation cloned the entire tree per candidate — `O(|tree|)` per
//! probe, the dominant cost of structure-heavy greedy iterations. The
//! journal replaces that with mutate-in-place + undo:
//!
//! * [`FTree::apply`] runs a real insertion while recording every arena
//!   mutation it performs — component slot writes (first-touch snapshots),
//!   allocations and frees, vertex re-assignments, the root list, the
//!   free list and the version counter;
//! * [`FTree::rollback`] replays the journal, restoring the tree
//!   **bit-identically**: structure, cached estimates, local-id maps,
//!   arena slot order, free-list order and version numbers all come back
//!   exactly, so a later commit of any edge produces the same tree (and
//!   the same component versions) as if the probe had never happened.
//!
//! Cost is proportional to the components the insertion actually touches —
//! for typical probes a handful of slots — instead of the whole tree.
//! Dropping a journal commits the applied insertion (nothing to undo), so
//! a selection loop can keep the winning candidate's insertion without
//! re-running it.
//!
//! Recording hooks live on the low-level mutators ([`FTree::comp_mut`],
//! `alloc`, `dealloc`, `set_assignment`, `take_component`), so every
//! insertion path — leaf attachment, `splitTree`, chain absorption — is
//! journalled without case-specific code.

use flowmax_graph::{EdgeId, ProbabilisticGraph, VertexId};

use super::{Component, ComponentId, FTree, InsertReport};
use crate::error::CoreError;
use crate::estimator::EstimateProvider;

/// The undo record of one [`FTree::apply`] — consume it with
/// [`FTree::rollback`] to restore the pre-apply tree bit-identically, or
/// drop it to keep the insertion.
#[derive(Debug)]
pub struct Journal {
    /// The edge the apply inserted (removed again on rollback).
    edge: EdgeId,
    /// Arena length before the apply; slots at or beyond it are truncated.
    arena_len: usize,
    /// Free-list snapshot (order matters: `alloc` pops it, so restoring
    /// the exact order keeps later slot assignment deterministic).
    free: Vec<u32>,
    /// Root-list snapshot.
    roots: Vec<ComponentId>,
    /// Version counter before the apply.
    version_counter: u64,
    /// First-touch snapshots of every arena slot the apply wrote.
    slots: Vec<(u32, Option<Component>)>,
    /// Every vertex-assignment write `(vertex, previous owner)`, replayed
    /// in reverse on rollback.
    assignments: Vec<(VertexId, Option<ComponentId>)>,
}

impl Journal {
    /// The edge whose insertion this journal records.
    pub fn edge(&self) -> EdgeId {
        self.edge
    }

    /// Number of arena slots the insertion touched (the probe's structural
    /// cost — what a clone-based probe would have paid per *tree* slot).
    pub fn touched_slots(&self) -> usize {
        self.slots.len()
    }
}

/// The in-flight recording state during an [`FTree::apply`]. Stored on the
/// tree so the low-level mutators can record without threading a parameter
/// through every insertion helper.
#[derive(Debug, Default)]
pub(crate) struct Recorder {
    arena_len: usize,
    free: Vec<u32>,
    roots: Vec<ComponentId>,
    version_counter: u64,
    slots: Vec<(u32, Option<Component>)>,
    assignments: Vec<(VertexId, Option<ComponentId>)>,
}

impl Recorder {
    fn begin(tree: &FTree) -> Recorder {
        Recorder {
            arena_len: tree.arena.len(),
            free: tree.free.clone(),
            roots: tree.roots.clone(),
            version_counter: tree.version_counter,
            slots: Vec::new(),
            assignments: Vec::new(),
        }
    }

    /// Whether `slot` already has a first-touch snapshot.
    fn touched(&self, slot: u32) -> bool {
        self.slots.iter().any(|&(s, _)| s == slot)
    }
}

impl FTree {
    /// Inserts `e` exactly like [`FTree::insert_edge`], additionally
    /// returning a [`Journal`] that [`FTree::rollback`] can consume to
    /// restore the tree bit-identically. Dropping the journal keeps the
    /// insertion.
    ///
    /// # Errors
    ///
    /// The same as [`FTree::insert_edge`]; on error the tree is untouched
    /// (both error cases are detected before any mutation).
    pub fn apply(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        provider: &mut dyn EstimateProvider,
    ) -> Result<(InsertReport, Journal), CoreError> {
        debug_assert!(self.recorder.is_none(), "apply calls must not nest");
        self.recorder = Some(Box::new(Recorder::begin(self)));
        let result = self.insert_edge(graph, e, provider);
        let rec = *self.recorder.take().expect("recorder installed above");
        match result {
            Ok(report) => Ok((
                report,
                Journal {
                    edge: e,
                    arena_len: rec.arena_len,
                    free: rec.free,
                    roots: rec.roots,
                    version_counter: rec.version_counter,
                    slots: rec.slots,
                    assignments: rec.assignments,
                },
            )),
            Err(err) => {
                debug_assert!(
                    rec.slots.is_empty() && rec.assignments.is_empty(),
                    "insert_edge rejects invalid edges before mutating"
                );
                Err(err)
            }
        }
    }

    /// Undoes the insertion recorded by `journal`, restoring the tree to
    /// its exact pre-[`apply`](FTree::apply) state — structure, member
    /// maps, snapshots, estimates, versions, arena layout and free-list
    /// order included.
    ///
    /// Journals must be rolled back in reverse apply order; the common
    /// probe pattern (apply → score → rollback, one candidate at a time)
    /// satisfies this trivially.
    pub fn rollback(&mut self, journal: Journal) {
        debug_assert!(self.recorder.is_none(), "cannot rollback mid-apply");
        let removed = self.selected.remove(journal.edge);
        debug_assert!(removed, "journalled edge must still be selected");
        // Assignment writes are replayed newest-first so a vertex that
        // moved twice (e.g. absorbed then re-assigned) lands on its
        // original owner.
        for (v, owner) in journal.assignments.into_iter().rev() {
            self.assignment[v.index()] = owner;
        }
        // First-touch slot snapshots restore in any order (each slot
        // appears once); slots past the old arena length are dropped by
        // the truncate below.
        for (slot, saved) in journal.slots {
            if (slot as usize) < journal.arena_len {
                self.arena[slot as usize] = saved;
            }
        }
        self.arena.truncate(journal.arena_len);
        self.free = journal.free;
        self.roots = journal.roots;
        self.version_counter = journal.version_counter;
    }

    /// Records the first-touch snapshot of `slot` if an apply is running.
    /// Every mutation of an existing component must pass through here (the
    /// [`FTree::comp_mut`] accessor does it for all of them).
    #[inline]
    pub(crate) fn record_slot_touch(&mut self, slot: u32) {
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        if rec.touched(slot) {
            return;
        }
        let saved = self.arena[slot as usize].clone();
        rec.slots.push((slot, saved));
    }

    /// Records an allocation into `slot` (its prior state is `None`: a
    /// free-listed hole or a fresh push past the old arena end).
    #[inline]
    pub(crate) fn record_alloc(&mut self, slot: u32) {
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        if !rec.touched(slot) {
            rec.slots.push((slot, None));
        }
    }

    /// The single write path for vertex ownership, journalled.
    #[inline]
    pub(crate) fn set_assignment(&mut self, v: VertexId, owner: Option<ComponentId>) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.assignments.push((v, self.assignment[v.index()]));
        }
        self.assignment[v.index()] = owner;
    }

    /// Moves a live component out of the arena (freeing its slot), with
    /// journalling — the take-variant of [`FTree::dealloc`] used when the
    /// caller consumes the component (chain absorption).
    pub(crate) fn take_component(&mut self, cid: ComponentId) -> Component {
        self.record_slot_touch(cid.0);
        let comp = self.arena[cid.index()].take().expect("live component");
        self.free.push(cid.0);
        comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{EstimatorConfig, SamplingProvider};
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn provider() -> SamplingProvider {
        SamplingProvider::new(EstimatorConfig::exact(), 3)
    }

    /// Diamond + tail: Q(0)-1, 1-2, 0-2 (cycle), 2-3 (tail), 1-3 (chord).
    fn graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p).unwrap();
        b.build()
    }

    #[test]
    fn apply_rollback_restores_every_case() {
        let g = graph();
        let mut pr = provider();
        // Grow the tree edge by edge; before each commit, apply + rollback
        // every remaining insertable edge and demand exact equality.
        let mut tree = FTree::new(&g, VertexId(0));
        for commit in 0..g.edge_count() as u32 {
            for e in g.edge_ids() {
                if tree.selected_edges().contains(e) {
                    continue;
                }
                let (a, b) = g.endpoints(e);
                if !tree.contains_vertex(a) && !tree.contains_vertex(b) {
                    continue;
                }
                let before = tree.clone();
                let (report, journal) = tree.apply(&g, e, &mut pr).unwrap();
                assert_eq!(journal.edge(), e);
                assert!(tree.selected_edges().contains(e));
                let _ = report;
                tree.rollback(journal);
                assert_eq!(tree, before, "rollback must restore bit-identically");
                tree.validate(&g).unwrap();
            }
            tree.insert_edge(&g, EdgeId(commit), &mut pr).unwrap();
            tree.validate(&g).unwrap();
        }
    }

    #[test]
    fn dropped_journal_commits_the_insertion() {
        let g = graph();
        let mut pr = provider();
        let mut tree = FTree::new(&g, VertexId(0));
        let (_, journal) = tree.apply(&g, EdgeId(0), &mut pr).unwrap();
        drop(journal);
        assert_eq!(tree.edge_count(), 1);
        tree.validate(&g).unwrap();
        // And the tree equals a plain insert_edge build.
        let mut direct = FTree::new(&g, VertexId(0));
        direct.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        assert_eq!(tree, direct);
    }

    #[test]
    fn apply_errors_leave_tree_untouched() {
        let g = graph();
        let mut pr = provider();
        let mut tree = FTree::new(&g, VertexId(0));
        tree.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        let before = tree.clone();
        assert!(matches!(
            tree.apply(&g, EdgeId(0), &mut pr),
            Err(CoreError::EdgeAlreadySelected(_))
        ));
        assert!(matches!(
            tree.apply(&g, EdgeId(3), &mut pr),
            Err(CoreError::DisconnectedEdge { .. })
        ));
        assert_eq!(tree, before);
    }

    #[test]
    fn rollback_restores_free_list_order_for_deterministic_allocs() {
        // Build a tree whose insertion deallocates components (case IV
        // absorbing a chain), roll back, and check that committing the
        // same edge afterwards produces the identical arena layout.
        let g = graph();
        let mut pr = provider();
        let mut tree = FTree::new(&g, VertexId(0));
        for e in [0u32, 1, 3] {
            tree.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        let mut reference = tree.clone();
        let (_, journal) = tree.apply(&g, EdgeId(2), &mut pr).unwrap();
        tree.rollback(journal);
        tree.insert_edge(&g, EdgeId(2), &mut pr).unwrap();
        reference.insert_edge(&g, EdgeId(2), &mut pr).unwrap();
        assert_eq!(tree, reference, "probe must not perturb the commit");
    }
}
