//! The F-tree undo journal: clone-free structural mutation.
//!
//! Structural candidate probes (cases IIIb/IV of §5.4) need to know the
//! flow the tree *would* have after an insertion. The historical
//! implementation cloned the entire tree per candidate — `O(|tree|)` per
//! probe, the dominant cost of structure-heavy greedy iterations. The
//! journal replaces that with mutate-in-place + undo:
//!
//! * [`FTree::apply`] runs a real insertion while recording every arena
//!   mutation it performs — component slot writes (first-touch snapshots),
//!   allocations and frees, vertex re-assignments, the root list, the
//!   free list and the version counter;
//! * [`FTree::rollback`] replays the journal, restoring the tree
//!   **bit-identically**: structure, cached estimates, local-id maps,
//!   arena slot order, free-list order and version numbers all come back
//!   exactly, so a later commit of any edge produces the same tree (and
//!   the same component versions) as if the probe had never happened.
//!
//! Cost is proportional to the components the insertion actually touches —
//! for typical probes a handful of slots — instead of the whole tree.
//! Dropping a journal commits the applied insertion (nothing to undo), so
//! a selection loop can keep the winning candidate's insertion without
//! re-running it.
//!
//! Recording hooks live on the low-level mutators ([`FTree::comp_mut`],
//! `alloc`, `dealloc`, `set_assignment`, `take_component`), so every
//! insertion path — leaf attachment, `splitTree`, chain absorption — is
//! journalled without case-specific code.

use flowmax_graph::{EdgeId, ProbabilisticGraph, VertexId};
use flowmax_sampling::ComponentGraph;

use super::{Component, ComponentId, FTree, InsertReport, Kind};
use crate::error::CoreError;
use crate::estimator::EstimateProvider;

/// The undo record of one [`FTree::apply`] — consume it with
/// [`FTree::rollback`] to restore the pre-apply tree bit-identically, or
/// drop it to keep the insertion.
#[derive(Debug)]
pub struct Journal {
    /// The edge the apply inserted (removed again on rollback).
    edge: EdgeId,
    /// Arena length before the apply; slots at or beyond it are truncated.
    arena_len: usize,
    /// Free-list snapshot (order matters: `alloc` pops it, so restoring
    /// the exact order keeps later slot assignment deterministic).
    free: Vec<u32>,
    /// Root-list snapshot.
    roots: Vec<ComponentId>,
    /// Version counter before the apply.
    version_counter: u64,
    /// First-touch snapshots of every arena slot the apply wrote.
    slots: Vec<(u32, Option<Component>)>,
    /// Every vertex-assignment write `(vertex, previous owner)`, replayed
    /// in reverse on rollback.
    assignments: Vec<(VertexId, Option<ComponentId>)>,
}

impl Journal {
    /// The edge whose insertion this journal records.
    pub fn edge(&self) -> EdgeId {
        self.edge
    }

    /// Number of arena slots the insertion touched (the probe's structural
    /// cost — what a clone-based probe would have paid per *tree* slot).
    pub fn touched_slots(&self) -> usize {
        self.slots.len()
    }

    /// The arena slot ids the insertion touched (first-touch order) — the
    /// seed set for `O(touched)` incremental flow evaluation.
    pub(crate) fn touched_slot_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots.iter().map(|&(s, _)| s)
    }
}

/// The *redo* record of one probed insertion: the post-apply images
/// [`FTree::rollback_capturing`] collects on the way out. The selection
/// loop commits a winning structural candidate by handing this back to
/// [`FTree::commit_replay`], which re-applies the recorded mutations —
/// estimates included — without re-running `insert_edge` (and therefore
/// without re-estimating or re-sampling anything).
///
/// A replay is only valid on the exact tree state it was captured from;
/// `commit_replay` debug-asserts the version counter and arena length to
/// catch misuse.
#[derive(Debug)]
pub(crate) struct CommitReplay {
    /// The candidate edge the probe applied.
    edge: EdgeId,
    /// The bi component the insertion formed.
    component: ComponentId,
    /// Tree state fingerprints at capture time (pre-apply side).
    pre_version_counter: u64,
    pre_arena_len: usize,
    /// Post-apply images: arena length, free list, roots, version counter,
    /// touched slots and vertex assignments as the applied tree had them.
    arena_len: usize,
    free: Vec<u32>,
    roots: Vec<ComponentId>,
    version_counter: u64,
    slots: Vec<(u32, Option<Component>)>,
    assignments: Vec<(VertexId, Option<ComponentId>)>,
}

impl CommitReplay {
    /// The edge the replay would insert.
    pub(crate) fn edge(&self) -> EdgeId {
        self.edge
    }

    /// The component snapshot of the bi component the insertion forms, as
    /// it will exist after the replay. A memoized estimate for this
    /// snapshot is what licenses a replay-based commit (the reference
    /// engine's re-insertion would hit the memo rather than sample).
    pub(crate) fn snapshot(&self) -> &ComponentGraph {
        let (_, post) = self
            .slots
            .iter()
            .find(|&&(s, _)| s == self.component.0)
            .expect("replay records the formed component's slot");
        let comp = post
            .as_ref()
            .expect("the formed component is live in the post-image");
        let Kind::Bi { snapshot, .. } = &comp.kind else {
            panic!("structural insertions form a bi component")
        };
        snapshot
    }
}

/// The in-flight recording state during an [`FTree::apply`]. Stored on the
/// tree so the low-level mutators can record without threading a parameter
/// through every insertion helper.
#[derive(Debug, Default)]
pub(crate) struct Recorder {
    arena_len: usize,
    free: Vec<u32>,
    roots: Vec<ComponentId>,
    version_counter: u64,
    slots: Vec<(u32, Option<Component>)>,
    assignments: Vec<(VertexId, Option<ComponentId>)>,
}

impl Recorder {
    fn begin(tree: &FTree) -> Recorder {
        Recorder {
            arena_len: tree.arena.len(),
            free: tree.free.clone(),
            roots: tree.roots.clone(),
            version_counter: tree.version_counter,
            slots: Vec::new(),
            assignments: Vec::new(),
        }
    }

    /// Whether `slot` already has a first-touch snapshot.
    fn touched(&self, slot: u32) -> bool {
        self.slots.iter().any(|&(s, _)| s == slot)
    }
}

impl FTree {
    /// Inserts `e` exactly like [`FTree::insert_edge`], additionally
    /// returning a [`Journal`] that [`FTree::rollback`] can consume to
    /// restore the tree bit-identically. Dropping the journal keeps the
    /// insertion.
    ///
    /// # Errors
    ///
    /// The same as [`FTree::insert_edge`]; on error the tree is untouched
    /// (both error cases are detected before any mutation).
    pub fn apply(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        provider: &mut dyn EstimateProvider,
    ) -> Result<(InsertReport, Journal), CoreError> {
        debug_assert!(self.recorder.is_none(), "apply calls must not nest");
        self.recorder = Some(Box::new(Recorder::begin(self)));
        let result = self.insert_edge(graph, e, provider);
        let rec = *self.recorder.take().expect("recorder installed above");
        match result {
            Ok(report) => Ok((
                report,
                Journal {
                    edge: e,
                    arena_len: rec.arena_len,
                    free: rec.free,
                    roots: rec.roots,
                    version_counter: rec.version_counter,
                    slots: rec.slots,
                    assignments: rec.assignments,
                },
            )),
            Err(err) => {
                debug_assert!(
                    rec.slots.is_empty() && rec.assignments.is_empty(),
                    "insert_edge rejects invalid edges before mutating"
                );
                Err(err)
            }
        }
    }

    /// Undoes the insertion recorded by `journal`, restoring the tree to
    /// its exact pre-[`apply`](FTree::apply) state — structure, member
    /// maps, snapshots, estimates, versions, arena layout and free-list
    /// order included.
    ///
    /// Journals must be rolled back in reverse apply order; the common
    /// probe pattern (apply → score → rollback, one candidate at a time)
    /// satisfies this trivially.
    pub fn rollback(&mut self, journal: Journal) {
        debug_assert!(self.recorder.is_none(), "cannot rollback mid-apply");
        let removed = self.selected.remove(journal.edge);
        debug_assert!(removed, "journalled edge must still be selected");
        // Assignment writes are replayed newest-first so a vertex that
        // moved twice (e.g. absorbed then re-assigned) lands on its
        // original owner.
        for (v, owner) in journal.assignments.into_iter().rev() {
            self.assignment[v.index()] = owner;
        }
        // First-touch slot snapshots restore in any order (each slot
        // appears once); slots past the old arena length are dropped by
        // the truncate below.
        for (slot, saved) in journal.slots {
            if (slot as usize) < journal.arena_len {
                self.arena[slot as usize] = saved;
            }
        }
        self.arena.truncate(journal.arena_len);
        self.free = journal.free;
        self.roots = journal.roots;
        self.version_counter = journal.version_counter;
    }

    /// [`rollback`](FTree::rollback) that captures the applied state's
    /// images on the way out, as a [`CommitReplay`] for `component` (the bi
    /// component the insertion formed). Restoration is bit-identical to a
    /// plain rollback; the only extra cost is moving the post-images out of
    /// the arena instead of overwriting them.
    pub(crate) fn rollback_capturing(
        &mut self,
        journal: Journal,
        component: ComponentId,
    ) -> CommitReplay {
        debug_assert!(self.recorder.is_none(), "cannot rollback mid-apply");
        let removed = self.selected.remove(journal.edge);
        debug_assert!(removed, "journalled edge must still be selected");
        let Journal {
            edge,
            arena_len,
            free,
            roots,
            version_counter,
            slots,
            assignments,
        } = journal;
        let post_arena_len = self.arena.len();
        let post_free = std::mem::replace(&mut self.free, free);
        let post_roots = std::mem::replace(&mut self.roots, roots);
        let post_version_counter = self.version_counter;
        self.version_counter = version_counter;
        // Post-assignment of a vertex = its current value, recorded once
        // (the journal may hold several writes for one vertex).
        let mut post_assignments: Vec<(VertexId, Option<ComponentId>)> =
            Vec::with_capacity(assignments.len());
        for &(v, _) in &assignments {
            if !post_assignments.iter().any(|&(pv, _)| pv == v) {
                post_assignments.push((v, self.assignment[v.index()]));
            }
        }
        for (v, owner) in assignments.into_iter().rev() {
            self.assignment[v.index()] = owner;
        }
        let mut post_slots: Vec<(u32, Option<Component>)> = Vec::with_capacity(slots.len());
        for (slot, saved) in slots {
            let idx = slot as usize;
            let post = if idx < arena_len {
                std::mem::replace(&mut self.arena[idx], saved)
            } else {
                self.arena[idx].take()
            };
            post_slots.push((slot, post));
        }
        self.arena.truncate(arena_len);
        CommitReplay {
            edge,
            component,
            pre_version_counter: version_counter,
            pre_arena_len: arena_len,
            arena_len: post_arena_len,
            free: post_free,
            roots: post_roots,
            version_counter: post_version_counter,
            slots: post_slots,
            assignments: post_assignments,
        }
    }

    /// Commits a probed insertion by re-applying its captured post-images —
    /// the `O(touched)` commit path of the incremental engine. The tree
    /// ends bit-identical to re-running `insert_edge` with the same
    /// estimates, but nothing is re-classified, re-built or re-sampled; the
    /// touched slots are queued on the flow cache for the next drain.
    pub(crate) fn commit_replay(&mut self, replay: CommitReplay) {
        debug_assert!(self.recorder.is_none(), "cannot commit mid-apply");
        debug_assert_eq!(
            self.version_counter, replay.pre_version_counter,
            "replay requires the exact tree it was captured from"
        );
        debug_assert_eq!(
            self.arena.len(),
            replay.pre_arena_len,
            "replay requires the exact tree it was captured from"
        );
        let CommitReplay {
            edge,
            component: _,
            pre_version_counter: _,
            pre_arena_len: _,
            arena_len,
            free,
            roots,
            version_counter,
            slots,
            assignments,
        } = replay;
        if self.arena.len() < arena_len {
            self.arena.resize_with(arena_len, || None);
        }
        let touched: Vec<u32> = slots.iter().map(|&(s, _)| s).collect();
        for (slot, post) in slots {
            self.arena[slot as usize] = post;
        }
        for (v, owner) in assignments {
            self.assignment[v.index()] = owner;
        }
        self.free = free;
        self.roots = roots;
        self.version_counter = version_counter;
        let inserted = self.selected.insert(edge);
        debug_assert!(inserted, "replayed edge must not already be selected");
        self.cache_mark_dirty(touched);
    }

    /// Records the first-touch snapshot of `slot` if an apply is running.
    /// Every mutation of an existing component must pass through here (the
    /// [`FTree::comp_mut`] accessor does it for all of them).
    #[inline]
    pub(crate) fn record_slot_touch(&mut self, slot: u32) {
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        if rec.touched(slot) {
            return;
        }
        let saved = self.arena[slot as usize].clone();
        rec.slots.push((slot, saved));
    }

    /// Records an allocation into `slot` (its prior state is `None`: a
    /// free-listed hole or a fresh push past the old arena end).
    #[inline]
    pub(crate) fn record_alloc(&mut self, slot: u32) {
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        if !rec.touched(slot) {
            rec.slots.push((slot, None));
        }
    }

    /// The single write path for vertex ownership, journalled.
    #[inline]
    pub(crate) fn set_assignment(&mut self, v: VertexId, owner: Option<ComponentId>) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.assignments.push((v, self.assignment[v.index()]));
        }
        self.assignment[v.index()] = owner;
    }

    /// Moves a live component out of the arena (freeing its slot), with
    /// journalling — the take-variant of [`FTree::dealloc`] used when the
    /// caller consumes the component (chain absorption).
    pub(crate) fn take_component(&mut self, cid: ComponentId) -> Component {
        self.record_slot_touch(cid.0);
        let comp = self.arena[cid.index()].take().expect("live component");
        self.free.push(cid.0);
        comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{EstimatorConfig, SamplingProvider};
    use crate::ftree::InsertCase;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn provider() -> SamplingProvider {
        SamplingProvider::new(EstimatorConfig::exact(), 3)
    }

    /// Diamond + tail: Q(0)-1, 1-2, 0-2 (cycle), 2-3 (tail), 1-3 (chord).
    fn graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p).unwrap();
        b.build()
    }

    #[test]
    fn apply_rollback_restores_every_case() {
        let g = graph();
        let mut pr = provider();
        // Grow the tree edge by edge; before each commit, apply + rollback
        // every remaining insertable edge and demand exact equality.
        let mut tree = FTree::new(&g, VertexId(0));
        for commit in 0..g.edge_count() as u32 {
            for e in g.edge_ids() {
                if tree.selected_edges().contains(e) {
                    continue;
                }
                let (a, b) = g.endpoints(e);
                if !tree.contains_vertex(a) && !tree.contains_vertex(b) {
                    continue;
                }
                let before = tree.clone();
                let (report, journal) = tree.apply(&g, e, &mut pr).unwrap();
                assert_eq!(journal.edge(), e);
                assert!(tree.selected_edges().contains(e));
                let _ = report;
                tree.rollback(journal);
                assert_eq!(tree, before, "rollback must restore bit-identically");
                tree.validate(&g).unwrap();
            }
            tree.insert_edge(&g, EdgeId(commit), &mut pr).unwrap();
            tree.validate(&g).unwrap();
        }
    }

    #[test]
    fn dropped_journal_commits_the_insertion() {
        let g = graph();
        let mut pr = provider();
        let mut tree = FTree::new(&g, VertexId(0));
        let (_, journal) = tree.apply(&g, EdgeId(0), &mut pr).unwrap();
        drop(journal);
        assert_eq!(tree.edge_count(), 1);
        tree.validate(&g).unwrap();
        // And the tree equals a plain insert_edge build.
        let mut direct = FTree::new(&g, VertexId(0));
        direct.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        assert_eq!(tree, direct);
    }

    #[test]
    fn apply_errors_leave_tree_untouched() {
        let g = graph();
        let mut pr = provider();
        let mut tree = FTree::new(&g, VertexId(0));
        tree.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        let before = tree.clone();
        assert!(matches!(
            tree.apply(&g, EdgeId(0), &mut pr),
            Err(CoreError::EdgeAlreadySelected(_))
        ));
        assert!(matches!(
            tree.apply(&g, EdgeId(3), &mut pr),
            Err(CoreError::DisconnectedEdge { .. })
        ));
        assert_eq!(tree, before);
    }

    #[test]
    fn rollback_restores_free_list_order_for_deterministic_allocs() {
        // Build a tree whose insertion deallocates components (case IV
        // absorbing a chain), roll back, and check that committing the
        // same edge afterwards produces the identical arena layout.
        let g = graph();
        let mut pr = provider();
        let mut tree = FTree::new(&g, VertexId(0));
        for e in [0u32, 1, 3] {
            tree.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        let mut reference = tree.clone();
        let (_, journal) = tree.apply(&g, EdgeId(2), &mut pr).unwrap();
        tree.rollback(journal);
        tree.insert_edge(&g, EdgeId(2), &mut pr).unwrap();
        reference.insert_edge(&g, EdgeId(2), &mut pr).unwrap();
        assert_eq!(tree, reference, "probe must not perturb the commit");
    }

    /// The replay-commit golden: walking the Fig. 3 graph, every structural
    /// insertion is committed by **replaying its probe's captured journal**
    /// (apply → `rollback_capturing` → `commit_replay`) and must leave the
    /// tree `PartialEq`-identical to a reference built by `insert_edge` —
    /// including arena layout, free-list order, version counters and the
    /// cached estimates the rollback re-captured.
    #[test]
    fn commit_replay_equals_insert_edge_built_tree() {
        let g = crate::ftree::goldens::figure3_graph();
        let mut pr = provider();
        let mut replayed = FTree::new(&g, VertexId(0));
        let mut reference = FTree::new(&g, VertexId(0));
        let mut structural_commits = 0usize;
        for e in 0..19u32 {
            let e = EdgeId(e);
            let (report, journal) = replayed.apply(&g, e, &mut pr).unwrap();
            let structural = matches!(
                report.case,
                InsertCase::CycleInMono | InsertCase::CycleAcross
            );
            if structural {
                // The probe path: capture the journal's post-image while
                // rolling back, then commit by writing it back.
                let cid = report.component.expect("structural cases touch a bi");
                let replay = replayed.rollback_capturing(journal, cid);
                assert_eq!(replay.edge(), e);
                assert!(replay.snapshot().edge_count() > 0);
                replayed.commit_replay(replay);
                structural_commits += 1;
            } else {
                // Leaf/in-bi commits keep the applied journal directly.
                drop(journal);
            }
            reference.insert_edge(&g, e, &mut pr).unwrap();
            assert_eq!(replayed, reference, "trees diverged after {e:?}");
            replayed.validate(&g).unwrap();
            assert_eq!(
                replayed.expected_flow(&g, false).to_bits(),
                reference.expected_flow(&g, false).to_bits()
            );
        }
        assert!(
            structural_commits >= 2,
            "the figure 3 walk must exercise replay commits"
        );
    }
}
