//! F-tree invariant checking.
//!
//! [`FTree::validate`] cross-checks the incrementally maintained structure
//! against first principles, including the *static* Hopcroft–Tarjan
//! decomposition of the selected subgraph: every bi component of the F-tree
//! must be exactly one cyclic block, and every mono parent edge exactly one
//! bridge. Tests (unit, integration and property-based) call this after
//! every mutation sequence.

use std::collections::{BTreeMap, BTreeSet};

use flowmax_graph::{biconnected_components, Bfs, EdgeId, ProbabilisticGraph, VertexId};

use super::{ComponentId, FTree, Kind};

impl FTree {
    /// Exhaustively checks structural invariants; returns a description of
    /// the first violation found.
    ///
    /// Intended for tests and debugging — cost is `O(|V| + |E|)` plus a full
    /// static biconnected decomposition.
    pub fn validate(&self, graph: &ProbabilisticGraph) -> Result<(), String> {
        self.check_assignments()?;
        self.check_tree_shape()?;
        self.check_mono_invariants(graph)?;
        self.check_bi_invariants(graph)?;
        self.check_edge_partition(graph)?;
        self.check_against_static_decomposition(graph)?;
        self.check_connectivity(graph)?;
        Ok(())
    }

    fn check_assignments(&self) -> Result<(), String> {
        if self.assignment[self.query.index()].is_some() {
            return Err("query vertex must not be assigned to a component".into());
        }
        // Every assignment points at a live component that lists the vertex.
        for (i, assigned) in self.assignment.iter().enumerate() {
            let Some(cid) = assigned else { continue };
            let Some(comp) = self.arena.get(cid.index()).and_then(|c| c.as_ref()) else {
                return Err(format!("vertex {i} assigned to dead component {cid:?}"));
            };
            let v = VertexId::from_index(i);
            let listed = match &comp.kind {
                Kind::Mono { members } => members.contains_key(&v),
                Kind::Bi { local, .. } => local.contains_key(&v),
            };
            if !listed {
                return Err(format!("vertex {i} assigned to {cid:?} but not a member"));
            }
        }
        // Every member is assigned back to its component.
        for cid in self.component_ids() {
            let comp = self.comp(cid);
            let vertices: Vec<VertexId> = match &comp.kind {
                Kind::Mono { members } => members.keys().copied().collect(),
                Kind::Bi { local, .. } => local.keys().copied().collect(),
            };
            for v in vertices {
                if self.assignment[v.index()] != Some(cid) {
                    return Err(format!("member {v:?} of {cid:?} has wrong assignment"));
                }
            }
        }
        Ok(())
    }

    fn check_tree_shape(&self) -> Result<(), String> {
        for &root in &self.roots {
            let comp = self.comp(root);
            if comp.articulation != self.query {
                return Err(format!("root {root:?} AV {:?} != query", comp.articulation));
            }
            if comp.parent.is_some() {
                return Err(format!("root {root:?} has a parent"));
            }
        }
        let mut seen_children: BTreeSet<ComponentId> = BTreeSet::new();
        for cid in self.component_ids() {
            let comp = self.comp(cid);
            match comp.parent {
                None => {
                    if !self.roots.contains(&cid) {
                        return Err(format!("{cid:?} parentless but not a root"));
                    }
                }
                Some(p) => {
                    if self.owner(comp.articulation) != Some(p) {
                        return Err(format!(
                            "{cid:?} AV {:?} not owned by parent {p:?}",
                            comp.articulation
                        ));
                    }
                    if !self.comp(p).children.contains(&cid) {
                        return Err(format!("{cid:?} missing from parent {p:?} child list"));
                    }
                }
            }
            for &child in &comp.children {
                if !seen_children.insert(child) {
                    return Err(format!("{child:?} listed as child twice"));
                }
                if self.comp(child).parent != Some(cid) {
                    return Err(format!("{child:?} child of {cid:?} but parent differs"));
                }
            }
            // AV must not be a member of its own component.
            let av = comp.articulation;
            let av_inside = match &comp.kind {
                Kind::Mono { members } => members.contains_key(&av),
                Kind::Bi { local, .. } => local.contains_key(&av),
            };
            if av_inside {
                return Err(format!("{cid:?} contains its own AV {av:?}"));
            }
        }
        Ok(())
    }

    fn check_mono_invariants(&self, graph: &ProbabilisticGraph) -> Result<(), String> {
        for cid in self.component_ids() {
            let comp = self.comp(cid);
            let Kind::Mono { members } = &comp.kind else {
                continue;
            };
            let av = comp.articulation;
            for (&v, m) in members {
                // Parent edge must be selected and connect v to its parent.
                if !self.selected.contains(m.parent_edge) {
                    return Err(format!("mono member {v:?} parent edge not selected"));
                }
                let (a, b) = graph.endpoints(m.parent_edge);
                if !((a == v && b == m.parent) || (b == v && a == m.parent)) {
                    return Err(format!("mono member {v:?} parent edge endpoints wrong"));
                }
                let p = graph.probability(m.parent_edge).value();
                if (p - m.edge_prob).abs() > 1e-15 {
                    return Err(format!("mono member {v:?} cached edge_prob stale"));
                }
                // Parent chain must reach the AV with consistent reach/depth.
                let (mut reach, mut depth, mut cur) = (m.edge_prob, 1u32, m.parent);
                let mut guard = 0;
                while cur != av {
                    let Some(pm) = members.get(&cur) else {
                        return Err(format!(
                            "mono member {v:?} chain leaves component at {cur:?}"
                        ));
                    };
                    reach *= pm.edge_prob;
                    depth += 1;
                    cur = pm.parent;
                    guard += 1;
                    if guard > members.len() {
                        return Err(format!("mono member {v:?} chain has a cycle"));
                    }
                }
                if (reach - m.reach).abs() > 1e-12 {
                    return Err(format!(
                        "mono member {v:?} reach {} != recomputed {reach}",
                        m.reach
                    ));
                }
                if depth != m.depth {
                    return Err(format!(
                        "mono member {v:?} depth {} != recomputed {depth}",
                        m.depth
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_bi_invariants(&self, graph: &ProbabilisticGraph) -> Result<(), String> {
        for cid in self.component_ids() {
            let comp = self.comp(cid);
            let Kind::Bi {
                edges,
                snapshot,
                estimate,
                local,
                ..
            } = &comp.kind
            else {
                continue;
            };
            let av = comp.articulation;
            if snapshot.articulation() != av {
                return Err(format!("{cid:?} snapshot AV mismatch"));
            }
            let mut edge_set = BTreeSet::new();
            for &e in edges {
                if !self.selected.contains(e) {
                    return Err(format!("{cid:?} contains unselected edge {e:?}"));
                }
                if !edge_set.insert(e) {
                    return Err(format!("{cid:?} lists edge {e:?} twice"));
                }
            }
            if edges.len() < 2 {
                return Err(format!("{cid:?} is bi-connected with < 2 edges"));
            }
            // Snapshot covers exactly {AV} ∪ members.
            let snap_set: BTreeSet<VertexId> = snapshot.vertices().iter().copied().collect();
            let mut expect: BTreeSet<VertexId> = local.keys().copied().collect();
            expect.insert(av);
            if snap_set != expect {
                return Err(format!("{cid:?} snapshot vertices != members ∪ AV"));
            }
            if estimate.reach_all().len() != snapshot.vertex_count() {
                return Err(format!("{cid:?} estimate length mismatch"));
            }
            if (estimate.reach(0) - 1.0).abs() > 1e-12 {
                return Err(format!("{cid:?} AV reach must be 1"));
            }
            for &(v, l) in local.iter() {
                if snapshot.vertices().get(l as usize) != Some(&v) {
                    return Err(format!("{cid:?} local index of {v:?} stale"));
                }
                let r = estimate.reach(l as usize);
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("{cid:?} member {v:?} reach {r} out of range"));
                }
            }
            let _ = graph;
        }
        Ok(())
    }

    /// Every selected edge appears in exactly one place: one mono member's
    /// parent edge, or one bi component's edge list.
    fn check_edge_partition(&self, _graph: &ProbabilisticGraph) -> Result<(), String> {
        let mut holder: BTreeMap<EdgeId, ComponentId> = BTreeMap::new();
        for cid in self.component_ids() {
            let comp = self.comp(cid);
            let edges: Vec<EdgeId> = match &comp.kind {
                Kind::Mono { members } => members.values().map(|m| m.parent_edge).collect(),
                Kind::Bi { edges, .. } => edges.clone(),
            };
            for e in edges {
                if let Some(prev) = holder.insert(e, cid) {
                    return Err(format!("edge {e:?} held by both {prev:?} and {cid:?}"));
                }
            }
        }
        for e in self.selected.iter() {
            if !holder.contains_key(&e) {
                return Err(format!("selected edge {e:?} not held by any component"));
            }
        }
        if holder.len() != self.selected.len() {
            return Err("components hold edges that are not selected".into());
        }
        Ok(())
    }

    /// The incremental decomposition must match the static Hopcroft–Tarjan
    /// one: bi components ↔ cyclic blocks, mono parent edges ↔ bridges.
    fn check_against_static_decomposition(&self, graph: &ProbabilisticGraph) -> Result<(), String> {
        let deco = biconnected_components(graph, &self.selected);
        let mut static_cyclic: Vec<BTreeSet<EdgeId>> = deco
            .blocks
            .iter()
            .filter(|b| b.len() >= 2)
            .map(|b| b.iter().copied().collect())
            .collect();
        let mut static_bridges: BTreeSet<EdgeId> = deco
            .blocks
            .iter()
            .filter(|b| b.len() == 1)
            .map(|b| b[0])
            .collect();

        for cid in self.component_ids() {
            let comp = self.comp(cid);
            match &comp.kind {
                Kind::Bi { edges, .. } => {
                    let set: BTreeSet<EdgeId> = edges.iter().copied().collect();
                    let Some(pos) = static_cyclic.iter().position(|b| *b == set) else {
                        return Err(format!(
                            "bi component {cid:?} does not match any static cyclic block"
                        ));
                    };
                    static_cyclic.swap_remove(pos);
                }
                Kind::Mono { members } => {
                    for m in members.values() {
                        if !static_bridges.remove(&m.parent_edge) {
                            return Err(format!(
                                "mono edge {:?} is not a static bridge",
                                m.parent_edge
                            ));
                        }
                    }
                }
            }
        }
        if !static_cyclic.is_empty() {
            return Err(format!(
                "{} static cyclic blocks unmatched",
                static_cyclic.len()
            ));
        }
        if !static_bridges.is_empty() {
            return Err(format!("{} static bridges unmatched", static_bridges.len()));
        }
        Ok(())
    }

    /// Every assigned vertex must actually reach `Q` in the selected
    /// subgraph, and vice versa.
    fn check_connectivity(&self, graph: &ProbabilisticGraph) -> Result<(), String> {
        let mut bfs = Bfs::new(graph.vertex_count());
        let mut reached = vec![false; graph.vertex_count()];
        bfs.run(
            graph,
            self.query,
            |e| self.selected.contains(e),
            |v| {
                reached[v.index()] = true;
            },
        );
        for v in graph.vertices() {
            let in_tree = self.contains_vertex(v);
            if in_tree != reached[v.index()] {
                return Err(format!(
                    "vertex {v:?}: in_tree={in_tree} but BFS-reachable={}",
                    reached[v.index()]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{EstimatorConfig, SamplingProvider};
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    #[test]
    fn validate_passes_through_mixed_insertions() {
        // Two nested cycles plus tails, exercising all insert cases.
        let mut b = GraphBuilder::new();
        b.add_vertices(8, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        let edges = [
            (0u32, 1u32),
            (1, 2),
            (2, 3),
            (3, 0), // outer square
            (1, 3), // diagonal
            (2, 4), // tail
            (4, 5),
            (5, 6),
            (6, 4), // triangle on the tail
            (6, 7), // tail of the triangle
        ];
        for &(u, v) in &edges {
            b.add_edge(VertexId(u), VertexId(v), p).unwrap();
        }
        let g = b.build();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = SamplingProvider::new(EstimatorConfig::exact(), 1);
        for e in 0..edges.len() {
            t.insert_edge(&g, EdgeId(e as u32), &mut pr).unwrap();
            t.validate(&g)
                .unwrap_or_else(|err| panic!("after edge {e}: {err}"));
        }
        assert_eq!(t.bi_component_count(), 2);
    }

    #[test]
    fn validate_detects_corruption() {
        let mut b = GraphBuilder::new();
        b.add_vertices(3, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p).unwrap();
        let g = b.build();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = SamplingProvider::new(EstimatorConfig::exact(), 1);
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut pr).unwrap();
        t.validate(&g).unwrap();
        // Corrupt a cached reach value.
        for slot in t.arena.iter_mut().flatten() {
            if let Kind::Mono { members } = &mut slot.kind {
                if let Some(m) = members.values_mut().next() {
                    m.reach = 0.123;
                }
            }
        }
        assert!(t.validate(&g).is_err(), "stale reach must be caught");
    }
}
