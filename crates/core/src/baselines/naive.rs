//! The *Naive* baseline (§7.2): greedy edge selection with whole-subgraph
//! Monte-Carlo flow estimation \[7\], \[22\] and no F-tree.
//!
//! Every probe samples the entire candidate subgraph `E_i ∪ {e}` (1000
//! worlds by default) — the cost and variance the F-tree exists to avoid.
//! Probes run on the bit-parallel [`ParallelEstimator`] engine: 64 worlds
//! per traversal, optionally sharded across threads, with each probe seeded
//! by its own probe counter so results are thread-count invariant.

use flowmax_graph::{EdgeId, EdgeSubset, ProbabilisticGraph, VertexId};
use flowmax_sampling::{default_lane_words, default_threads, ParallelEstimator, SeedSequence};

use crate::metrics::SelectionMetrics;
use crate::selection::candidates::CandidateSet;
use crate::selection::greedy::SelectionOutcome;
use crate::selection::observer::{NoObserver, SelectionObserver, SelectionStep};

/// Configuration of the naive baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveConfig {
    /// Edge budget `k`.
    pub budget: usize,
    /// Monte-Carlo samples per probe (paper: 1000).
    pub samples: u32,
    /// Whether `W(Q)` counts toward the flow.
    pub include_query: bool,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for probe sampling (results do not depend on this).
    pub threads: usize,
    /// Lane width for probe sampling, in 64-world lane words per BFS block
    /// (supported widths 1, 4, 8; results do not depend on this).
    pub lane_words: usize,
}

impl NaiveConfig {
    /// Paper defaults at a given budget, with the [`default_threads`]
    /// worker count (`FLOWMAX_THREADS` or 1).
    pub fn paper(budget: usize, seed: u64) -> Self {
        NaiveConfig {
            budget,
            samples: 1000,
            include_query: false,
            seed,
            threads: default_threads(),
            lane_words: default_lane_words(),
        }
    }

    /// Overrides the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the sampling lane width (64-world lane words per BFS
    /// block). Bit-identical results at every supported width.
    pub fn with_lane_words(mut self, lane_words: usize) -> Self {
        self.lane_words = lane_words;
        self
    }
}

/// Runs the naive baseline.
pub fn naive_select(
    graph: &ProbabilisticGraph,
    query: VertexId,
    config: &NaiveConfig,
) -> SelectionOutcome {
    naive_select_observed(graph, query, config, &mut NoObserver)
}

/// [`naive_select`] with a [`SelectionObserver`] receiving one
/// [`SelectionStep`] per committed edge, while the run executes. The
/// observer is passive: observed and unobserved runs are bit-identical.
pub fn naive_select_observed(
    graph: &ProbabilisticGraph,
    query: VertexId,
    config: &NaiveConfig,
    observer: &mut dyn SelectionObserver,
) -> SelectionOutcome {
    let engine = ParallelEstimator::new(config.threads).with_lane_words(config.lane_words);
    // One child sequence per probe: probe `i` is a pure function of
    // `(seed, i)` no matter how many workers sample its batches.
    let probe_seq = SeedSequence::new(SeedSequence::new(config.seed).child_seed(0xBA5E));
    let mut probe_idx: u64 = 0;
    let mut selected = EdgeSubset::for_graph(graph);
    let mut selected_order = Vec::new();
    let mut candidates = CandidateSet::new(graph, query);
    let mut metrics = SelectionMetrics::default();
    let mut flow_trace = Vec::new();
    let mut final_flow = 0.0;

    for iter in 0..config.budget {
        let mut best: Option<(EdgeId, f64)> = None;
        let mut pool = 0usize;
        for e in candidates.to_vec() {
            pool += 1;
            // Probe: estimate the flow of E_i ∪ {e} by sampling the whole
            // candidate subgraph.
            selected.insert(e);
            let seq = SeedSequence::new(probe_seq.child_seed(probe_idx));
            probe_idx += 1;
            let est = engine.sample_reachability(graph, &selected, query, config.samples, &seq);
            let flow = est.flow(graph, query, config.include_query);
            selected.remove(e);
            metrics.probes += 1;
            metrics.samples_drawn += config.samples as u64;
            metrics.edge_samples_drawn += config.samples as u64 * (selected.len() + 1) as u64;
            match best {
                None => best = Some((e, flow)),
                Some((be, bf)) => {
                    if flow > bf || (flow == bf && e < be) {
                        best = Some((e, flow));
                    }
                }
            }
        }
        let Some((edge, flow)) = best else { break };
        selected.insert(edge);
        selected_order.push(edge);
        candidates.remove(edge);
        let (a, b) = graph.endpoints(edge);
        for v in [a, b] {
            candidates.vertex_joined(graph, v, &selected);
        }
        observer.on_step(&SelectionStep {
            iteration: iter,
            edge,
            gain: flow - final_flow,
            flow,
            pool,
            probes: pool as u64,
            ci_pruned: 0,
            ds_skipped: 0,
            memo_hits: 0,
        });
        final_flow = flow;
        flow_trace.push(flow);
    }

    SelectionOutcome {
        selected: selected_order,
        flow_trace,
        final_flow,
        metrics,
        stopped: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn small_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertex(Weight::ZERO);
        b.add_vertex(Weight::new(10.0).unwrap());
        b.add_vertex(Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p(0.9)).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p(0.9)).unwrap();
        b.build()
    }

    #[test]
    fn picks_high_value_branch_first() {
        let g = small_graph();
        let out = naive_select(&g, VertexId(0), &NaiveConfig::paper(1, 1));
        assert_eq!(out.selected, vec![EdgeId(0)]);
        // Sampled flow of a single 0.9 edge to weight 10 ≈ 9.
        assert!(
            (out.final_flow - 9.0).abs() < 0.8,
            "flow {}",
            out.final_flow
        );
    }

    #[test]
    fn exhausts_candidates() {
        let g = small_graph();
        let out = naive_select(&g, VertexId(0), &NaiveConfig::paper(10, 1));
        assert_eq!(out.selected.len(), 3);
        assert_eq!(out.flow_trace.len(), 3);
    }

    #[test]
    fn samples_account_for_whole_subgraph() {
        let g = small_graph();
        let out = naive_select(&g, VertexId(0), &NaiveConfig::paper(2, 1));
        // Iteration 1: 2 probes × 1000 samples; iteration 2: ≥ 2 probes.
        assert!(out.metrics.samples_drawn >= 4000);
        assert!(out.metrics.edge_samples_drawn > out.metrics.samples_drawn);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = small_graph();
        let a = naive_select(&g, VertexId(0), &NaiveConfig::paper(3, 9));
        let b = naive_select(&g, VertexId(0), &NaiveConfig::paper(3, 9));
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.final_flow, b.final_flow);
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let g = small_graph();
        let base = naive_select(&g, VertexId(0), &NaiveConfig::paper(3, 9).with_threads(1));
        for threads in [2, 8] {
            let out = naive_select(
                &g,
                VertexId(0),
                &NaiveConfig::paper(3, 9).with_threads(threads),
            );
            assert_eq!(base.selected, out.selected, "threads={threads}");
            assert_eq!(base.final_flow, out.final_flow, "threads={threads}");
            assert_eq!(base.flow_trace, out.flow_trace, "threads={threads}");
        }
    }
}
