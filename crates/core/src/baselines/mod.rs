//! The evaluation baselines of §7.2: `Naive` and `Dijkstra`.

pub mod dijkstra;
pub mod naive;

pub use dijkstra::{dijkstra_select, dijkstra_select_from_tree};
pub use naive::{naive_select, naive_select_observed, NaiveConfig};
