//! The evaluation baselines of §7.2: `Naive` and `Dijkstra`.

pub mod dijkstra;
pub mod naive;

pub use dijkstra::dijkstra_select;
pub use naive::{naive_select, NaiveConfig};
