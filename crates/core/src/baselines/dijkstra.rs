//! The *Dijkstra* baseline (§7.2): a maximum-probability spanning tree.
//!
//! Transforming `w(e) = −ln P(e)` and running Dijkstra from `Q` yields, in
//! settle order, a spanning tree maximizing each vertex's best-path
//! probability \[32\]. For budget `k`, the first `k` tree edges are selected.
//! The result is a tree, so its expected flow is computed *exactly* and
//! analytically (Theorem 2) — this baseline never samples, which is why it
//! is the fastest and least effective algorithm in the paper's evaluation.

use flowmax_graph::{
    max_probability_spanning_tree_full, EdgeId, ProbabilisticGraph, SpanningTree, VertexId,
};

use crate::estimator::{EstimatorConfig, SamplingProvider};
use crate::ftree::FTree;
use crate::metrics::SelectionMetrics;
use crate::selection::greedy::SelectionOutcome;
use crate::selection::observer::{NoObserver, SelectionObserver, SelectionStep};

/// Runs the Dijkstra spanning-tree baseline with edge budget `budget`.
pub fn dijkstra_select(
    graph: &ProbabilisticGraph,
    query: VertexId,
    budget: usize,
    include_query: bool,
) -> SelectionOutcome {
    let tree = max_probability_spanning_tree_full(graph, query);
    dijkstra_select_from_tree(graph, &tree, budget, include_query, &mut NoObserver)
}

/// [`dijkstra_select`] over a precomputed spanning tree (the tree depends
/// only on the graph and the query vertex, so multi-query sessions cache
/// it), streaming one [`SelectionStep`] per activated tree edge.
pub fn dijkstra_select_from_tree(
    graph: &ProbabilisticGraph,
    tree: &SpanningTree,
    budget: usize,
    include_query: bool,
    observer: &mut dyn SelectionObserver,
) -> SelectionOutcome {
    let query = tree.source;
    let selected: Vec<EdgeId> = tree.first_edges(budget);

    // A spanning tree is mono-connected: the F-tree computes its flow
    // exactly with zero sampling. Settle order guarantees every insertion is
    // a leaf attachment.
    let mut ftree = FTree::new(graph, query);
    let mut provider = SamplingProvider::new(EstimatorConfig::exact(), 0);
    let mut flow_trace = Vec::with_capacity(selected.len());
    let mut prev_flow = 0.0;
    for (iter, &e) in selected.iter().enumerate() {
        ftree
            .insert_edge(graph, e, &mut provider)
            .expect("settle order inserts parents before children");
        let flow = ftree.expected_flow(graph, include_query);
        flow_trace.push(flow);
        observer.on_step(&SelectionStep {
            iteration: iter,
            edge: e,
            gain: flow - prev_flow,
            flow,
            pool: 1,
            probes: 0,
            ci_pruned: 0,
            ds_skipped: 0,
            memo_hits: 0,
        });
        prev_flow = flow;
    }
    let final_flow = flow_trace.last().copied().unwrap_or(0.0);
    let metrics = SelectionMetrics {
        insert_case_ii: selected.len() as u64,
        ..Default::default()
    };
    SelectionOutcome {
        selected,
        flow_trace,
        final_flow,
        metrics,
        stopped: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{
        exact_expected_flow, EdgeSubset, GraphBuilder, Probability, Weight, DEFAULT_ENUMERATION_CAP,
    };

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap(); // e0
        b.add_edge(VertexId(1), VertexId(2), p(0.8)).unwrap(); // e1
        b.add_edge(VertexId(0), VertexId(2), p(0.3)).unwrap(); // e2
        b.add_edge(VertexId(2), VertexId(3), p(0.7)).unwrap(); // e3
        b.build()
    }

    #[test]
    fn selects_tree_edges_in_settle_order() {
        let g = graph();
        let out = dijkstra_select(&g, VertexId(0), 3, false);
        // Best paths: 0-1 (0.9), then 1-2 (0.72 > 0.3 direct), then 2-3.
        assert_eq!(out.selected, vec![EdgeId(0), EdgeId(1), EdgeId(3)]);
    }

    #[test]
    fn flow_is_exact_for_the_tree() {
        let g = graph();
        let out = dijkstra_select(&g, VertexId(0), 3, false);
        let subset = EdgeSubset::from_edges(g.edge_count(), out.selected.iter().copied());
        let exact =
            exact_expected_flow(&g, &subset, VertexId(0), false, DEFAULT_ENUMERATION_CAP).unwrap();
        assert!((out.final_flow - exact).abs() < 1e-12);
        assert_eq!(out.metrics.components_sampled, 0, "trees never sample");
    }

    #[test]
    fn budget_truncates() {
        let g = graph();
        let out = dijkstra_select(&g, VertexId(0), 1, false);
        assert_eq!(out.selected, vec![EdgeId(0)]);
        assert!((out.final_flow - 0.9).abs() < 1e-12);
    }

    #[test]
    fn flow_trace_matches_length() {
        let g = graph();
        let out = dijkstra_select(&g, VertexId(0), 2, false);
        assert_eq!(out.flow_trace.len(), 2);
        assert!(out.flow_trace[1] > out.flow_trace[0]);
    }
}
