//! Brute-force optimal edge selection for tiny instances.
//!
//! `MaxFlow(G, Q, k)` is NP-hard (Theorem 1); on graphs with a handful of
//! edges the optimum can still be found by enumerating all edge subsets of
//! size at most `k` and computing each subset's exact expected flow by
//! possible-world enumeration. This is the quality oracle used by tests to
//! quantify how close the greedy heuristics come to optimal.

use flowmax_graph::{
    exact_expected_flow, EdgeId, EdgeSubset, GraphError, ProbabilisticGraph, VertexId,
};

/// Cap on the edge count of brute-forced graphs (`C(m, ≤k) · 2^k` worlds).
pub const MAX_BRUTE_FORCE_EDGES: usize = 20;

/// The optimal subset found by brute force.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// The flow-maximizing edge subset (sorted by edge id).
    pub edges: Vec<EdgeId>,
    /// Its exact expected flow.
    pub flow: f64,
    /// Number of subsets evaluated.
    pub subsets_evaluated: u64,
}

/// Finds the exact optimum `MaxFlow(G, Q, k)` by exhaustive subset search.
///
/// # Errors
///
/// [`GraphError::TooManyEdgesForEnumeration`] if the graph has more than
/// [`MAX_BRUTE_FORCE_EDGES`] edges.
pub fn exact_max_flow(
    graph: &ProbabilisticGraph,
    query: VertexId,
    k: usize,
    include_query: bool,
) -> Result<ExactSolution, GraphError> {
    let m = graph.edge_count();
    if m > MAX_BRUTE_FORCE_EDGES {
        return Err(GraphError::TooManyEdgesForEnumeration {
            edges: m,
            max: MAX_BRUTE_FORCE_EDGES,
        });
    }
    let mut best_edges: Vec<EdgeId> = Vec::new();
    let mut best_flow = 0.0;
    let mut evaluated = 0u64;
    let mut subset = EdgeSubset::for_graph(graph);
    for mask in 0u64..(1u64 << m) {
        if (mask.count_ones() as usize) > k {
            continue;
        }
        subset.clear();
        for bit in 0..m {
            if mask >> bit & 1 == 1 {
                subset.insert(EdgeId(bit as u32));
            }
        }
        evaluated += 1;
        let flow = exact_expected_flow(graph, &subset, query, include_query, m)?;
        if flow > best_flow {
            best_flow = flow;
            best_edges = subset.iter().collect();
        }
    }
    Ok(ExactSolution {
        edges: best_edges,
        flow: best_flow,
        subsets_evaluated: evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Q(0): a strong edge to a light vertex vs a weak edge to a heavy one.
    fn tradeoff_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertex(Weight::ZERO);
        b.add_vertex(Weight::ONE);
        b.add_vertex(Weight::new(10.0).unwrap());
        b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap(); // flow 0.9
        b.add_edge(VertexId(0), VertexId(2), p(0.2)).unwrap(); // flow 2.0
        b.build()
    }

    #[test]
    fn optimum_with_budget_one() {
        let g = tradeoff_graph();
        let sol = exact_max_flow(&g, VertexId(0), 1, false).unwrap();
        assert_eq!(sol.edges, vec![EdgeId(1)], "weak edge to heavy vertex wins");
        assert!((sol.flow - 2.0).abs() < 1e-12);
    }

    #[test]
    fn optimum_with_budget_two_takes_both() {
        let g = tradeoff_graph();
        let sol = exact_max_flow(&g, VertexId(0), 2, false).unwrap();
        assert_eq!(sol.edges.len(), 2);
        assert!((sol.flow - 2.9).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_gives_zero_flow() {
        let g = tradeoff_graph();
        let sol = exact_max_flow(&g, VertexId(0), 0, false).unwrap();
        assert!(sol.edges.is_empty());
        assert_eq!(sol.flow, 0.0);
        assert_eq!(sol.subsets_evaluated, 1);
    }

    #[test]
    fn cycles_can_beat_trees() {
        // Triangle with high weight opposite Q: backup path worth a budget.
        let mut b = GraphBuilder::new();
        b.add_vertex(Weight::ZERO);
        b.add_vertex(Weight::ZERO);
        b.add_vertex(Weight::new(100.0).unwrap());
        b.add_vertex(Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), p(0.5)).unwrap(); // e0
        b.add_edge(VertexId(1), VertexId(2), p(0.5)).unwrap(); // e1
        b.add_edge(VertexId(0), VertexId(2), p(0.5)).unwrap(); // e2
        b.add_edge(VertexId(2), VertexId(3), p(0.5)).unwrap(); // e3
        let g = b.build();
        let sol = exact_max_flow(&g, VertexId(0), 3, false).unwrap();
        // Best 3 edges: the triangle (reach(2) = 0.625 → flow 62.5) beats any
        // tree using e3 (≤ 0.5·100 + extras).
        assert_eq!(sol.edges, vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
    }

    #[test]
    fn too_many_edges_rejected() {
        let mut b = GraphBuilder::new();
        b.add_vertices(30, Weight::ONE);
        for i in 0..29 {
            b.add_edge(VertexId(i), VertexId(i + 1), p(0.5)).unwrap();
        }
        let g = b.build();
        assert!(exact_max_flow(&g, VertexId(0), 3, false).is_err());
    }
}
