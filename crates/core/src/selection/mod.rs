//! Budgeted edge selection (§6): the greedy algorithm and its heuristics.

pub mod candidates;
pub mod delayed;
pub mod greedy;
pub mod memo;
mod racing;

pub use candidates::CandidateSet;
pub use delayed::DelayTracker;
pub use greedy::{greedy_select, CiEngine, GreedyConfig, SelectionOutcome};
pub use memo::MemoProvider;
