//! Budgeted edge selection (§6): the greedy algorithm and its heuristics.

pub mod candidates;
pub mod delayed;
pub mod greedy;
pub mod memo;
pub mod observer;
mod racing;

pub use candidates::CandidateSet;
pub use delayed::DelayTracker;
pub use greedy::{
    greedy_select, greedy_select_controlled, greedy_select_observed, CiEngine, GreedyConfig,
    SelectionOutcome,
};
pub use memo::MemoProvider;
pub use observer::{NoObserver, SelectionObserver, SelectionStep};
