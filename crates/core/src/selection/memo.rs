//! Component memoization (§6.2, the **M** heuristic).
//!
//! During each greedy iteration many candidate probes (re-)estimate
//! bi-connected components. [`MemoProvider`] caches estimates keyed by the
//! component's identity — articulation vertex + exact edge set (+ the sample
//! budget, so confidence-interval races at different budgets do not alias).
//! If a component re-forms unchanged in a later probe or insertion, the
//! cached reachability function is reused and no sampling happens. Staleness
//! is automatic: any change to the component changes its edge set and
//! therefore its key.

use std::collections::HashMap;

use flowmax_sampling::{splitmix64, ComponentEstimate, ComponentGraph};

use crate::estimator::{EstimateProvider, EstimatorConfig, SamplingProvider};

/// A memoizing wrapper around [`SamplingProvider`].
#[derive(Debug)]
pub struct MemoProvider {
    inner: SamplingProvider,
    cache: HashMap<u64, ComponentEstimate>,
    enabled: bool,
    /// Number of cache hits (estimates served without sampling).
    pub hits: u64,
    /// Number of cache misses (estimates computed and stored).
    pub misses: u64,
}

impl MemoProvider {
    /// Wraps a sampling provider; when `enabled` is false the wrapper is a
    /// transparent pass-through (the plain `FT` algorithm).
    pub fn new(inner: SamplingProvider, enabled: bool) -> Self {
        MemoProvider {
            inner,
            cache: HashMap::new(),
            enabled,
            hits: 0,
            misses: 0,
        }
    }

    /// The wrapped provider (for metrics extraction).
    pub fn inner(&self) -> &SamplingProvider {
        &self.inner
    }

    /// Mutable access to the wrapped provider (e.g. to adjust the sample
    /// budget during confidence-interval races).
    pub fn inner_mut(&mut self) -> &mut SamplingProvider {
        &mut self.inner
    }

    /// Drops all cached estimates.
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    /// Number of live cache entries.
    pub fn cached_components(&self) -> usize {
        self.cache.len()
    }

    fn fingerprint(&self, snapshot: &ComponentGraph) -> u64 {
        // The sample budget is part of the key so that low-budget racing
        // estimates are never served where a full-budget one is expected.
        // (Estimates *stored* under a key may carry more samples than the
        // key's budget — see [`MemoProvider::store`] — never fewer.)
        let cfg: EstimatorConfig = self.inner.config();
        let h = splitmix64(snapshot.fingerprint() ^ cfg.samples as u64);
        splitmix64(h ^ cfg.exact_edge_cap as u64)
    }

    /// Publishes an externally computed estimate into the cache under the
    /// current configuration's key, so later probes and insertions of the
    /// same component reuse it without sampling. The racing engine stores
    /// its finalists here: their estimates hold *at least* the configured
    /// budget (racing budgets are whole-batch quantized and may be
    /// reallocation-boosted), so serving them where a full-budget estimate
    /// is expected only reduces variance.
    ///
    /// A no-op when memoization is disabled.
    pub fn store(&mut self, snapshot: &ComponentGraph, estimate: ComponentEstimate) {
        if !self.enabled {
            return;
        }
        let key = self.fingerprint(snapshot);
        self.cache.insert(key, estimate);
    }

    /// Serves a cached estimate for `snapshot` if one exists, counting a
    /// hit exactly like [`estimate`](EstimateProvider::estimate) would —
    /// this is what licenses a replay-based commit: when the lookup hits,
    /// the reference engine's re-insertion would have been served the same
    /// cached estimate, so replaying the probe's recorded mutations is
    /// bit-identical *including* the metrics. A miss counts nothing (the
    /// caller falls back to a real insertion, whose estimate call records
    /// the miss). Always `None` when memoization is disabled.
    pub(crate) fn lookup(&mut self, snapshot: &ComponentGraph) -> Option<&ComponentEstimate> {
        if !self.enabled {
            return None;
        }
        let key = self.fingerprint(snapshot);
        if self.cache.contains_key(&key) {
            self.hits += 1;
            self.inner.metrics.memo_hits += 1;
            return self.cache.get(&key);
        }
        None
    }
}

impl EstimateProvider for MemoProvider {
    fn estimate(&mut self, snapshot: &ComponentGraph) -> ComponentEstimate {
        if !self.enabled {
            return self.inner.estimate(snapshot);
        }
        let key = self.fingerprint(snapshot);
        if let Some(cached) = self.cache.get(&key) {
            self.hits += 1;
            self.inner.metrics.memo_hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let est = self.inner.estimate(snapshot);
        self.cache.insert(key, est.clone());
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{EdgeId, GraphBuilder, Probability, VertexId, Weight};

    fn snapshot(extra_edge: bool) -> ComponentGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        let e0 = b.add_edge(VertexId(0), VertexId(1), p).unwrap();
        let e1 = b.add_edge(VertexId(1), VertexId(2), p).unwrap();
        let e2 = b.add_edge(VertexId(0), VertexId(2), p).unwrap();
        let e3 = b.add_edge(VertexId(1), VertexId(3), p).unwrap();
        let _ = e3;
        let g = b.build();
        let edges: Vec<EdgeId> = if extra_edge {
            vec![e0, e1, e2, e3]
        } else {
            vec![e0, e1, e2]
        };
        ComponentGraph::build(&g, VertexId(0), &edges)
    }

    #[test]
    fn repeat_estimates_hit_the_cache() {
        let inner = SamplingProvider::new(EstimatorConfig::monte_carlo(200), 1);
        let mut memo = MemoProvider::new(inner, true);
        let s = snapshot(false);
        let a = memo.estimate(&s);
        let b = memo.estimate(&s);
        assert_eq!(memo.hits, 1);
        assert_eq!(memo.misses, 1);
        assert_eq!(a.reach_all(), b.reach_all());
        assert_eq!(
            memo.inner().metrics.components_sampled,
            1,
            "sampled only once"
        );
    }

    #[test]
    fn different_edge_sets_do_not_alias() {
        let inner = SamplingProvider::new(EstimatorConfig::monte_carlo(100), 1);
        let mut memo = MemoProvider::new(inner, true);
        memo.estimate(&snapshot(false));
        memo.estimate(&snapshot(true));
        assert_eq!(memo.hits, 0);
        assert_eq!(memo.misses, 2);
        assert_eq!(memo.cached_components(), 2);
    }

    #[test]
    fn different_sample_budgets_do_not_alias() {
        let inner = SamplingProvider::new(EstimatorConfig::monte_carlo(100), 1);
        let mut memo = MemoProvider::new(inner, true);
        memo.estimate(&snapshot(false));
        memo.inner_mut().set_samples(400);
        memo.estimate(&snapshot(false));
        assert_eq!(memo.hits, 0, "different budgets must be distinct keys");
    }

    #[test]
    fn disabled_wrapper_is_transparent() {
        let inner = SamplingProvider::new(EstimatorConfig::monte_carlo(100), 1);
        let mut memo = MemoProvider::new(inner, false);
        let s = snapshot(false);
        memo.estimate(&s);
        memo.estimate(&s);
        assert_eq!(memo.hits, 0);
        assert_eq!(
            memo.inner().metrics.components_sampled,
            2,
            "resampled both times"
        );
    }

    #[test]
    fn stored_estimates_are_served_to_later_probes() {
        let inner = SamplingProvider::new(EstimatorConfig::monte_carlo(100), 1);
        let mut memo = MemoProvider::new(inner, true);
        let s = snapshot(false);
        // An externally computed (e.g. racing) estimate at a larger budget.
        let external = SamplingProvider::new(EstimatorConfig::monte_carlo(256), 9).estimate(&s);
        memo.store(&s, external.clone());
        let served = memo.estimate(&s);
        assert_eq!(memo.hits, 1, "the stored estimate must be served");
        assert_eq!(served.reach_all(), external.reach_all());
        assert_eq!(
            memo.inner().metrics.components_sampled,
            0,
            "no sampling through the memoized provider"
        );
        // Disabled wrapper: store is a no-op.
        let inner = SamplingProvider::new(EstimatorConfig::monte_carlo(100), 1);
        let mut off = MemoProvider::new(inner, false);
        off.store(&s, external);
        assert_eq!(off.cached_components(), 0);
    }

    #[test]
    fn clear_empties_cache() {
        let inner = SamplingProvider::new(EstimatorConfig::monte_carlo(100), 1);
        let mut memo = MemoProvider::new(inner, true);
        memo.estimate(&snapshot(false));
        memo.clear();
        assert_eq!(memo.cached_components(), 0);
        memo.estimate(&snapshot(false));
        assert_eq!(memo.misses, 2);
    }
}
