//! The selection observer seam: per-iteration step events.
//!
//! Every selection algorithm (greedy, Naive, Dijkstra) commits exactly one
//! edge per iteration; the observer seam surfaces each commit as a
//! [`SelectionStep`] *while the run is still executing*. This is what makes
//! the solver *anytime* in practice: the paper's greedy loop (§6.1) never
//! looks at the remaining budget when picking an edge, so the step stream
//! at budget `k` is a prefix of the stream at any larger budget, and a
//! consumer may stop listening — or act on a partial selection — at any
//! point.
//!
//! Observers are deliberately passive: they receive shared references and
//! cannot steer the selection, so an observed run is bit-identical to an
//! unobserved one.

use flowmax_graph::EdgeId;

/// One committed edge of a selection run: the per-iteration event streamed
/// to [`SelectionObserver`]s and collected by
/// [`SolveRun::steps`](crate::session::SolveRun::steps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionStep {
    /// Iteration index (0-based); equals the number of edges selected
    /// before this step.
    pub iteration: usize,
    /// The edge committed in this iteration.
    pub edge: EdgeId,
    /// Marginal gain of this step: the change in the run's own cumulative
    /// flow estimate (can be slightly negative under sampling noise).
    pub gain: f64,
    /// Cumulative expected flow after this step, under the run's own
    /// estimates (the same quantity as `SelectionOutcome::flow_trace`).
    pub flow: f64,
    /// Candidates actually probed this iteration (excludes §6.4-suspended
    /// candidates).
    pub pool: usize,
    /// Probe evaluations charged to this iteration (memoized and analytic
    /// probes included; re-probes at several race budgets count each time).
    pub probes: u64,
    /// Candidates eliminated by confidence-interval pruning (§6.3) this
    /// iteration.
    pub ci_pruned: u64,
    /// Candidate probes skipped because the edge was suspended by delayed
    /// sampling (§6.4) this iteration.
    pub ds_skipped: u64,
    /// Component estimates served from the §6.2 memo this iteration
    /// (probe-time cache hits plus racing streams resumed from cache).
    /// Part of the cross-engine determinism contract: the incremental
    /// engine's replay commits must reproduce the reference engine's hit
    /// sequence exactly.
    pub memo_hits: u64,
}

/// A passive listener for [`SelectionStep`] events.
///
/// Implemented for any `FnMut(&SelectionStep)` closure, so streaming
/// consumers can be written inline:
///
/// ```
/// use flowmax_core::{SelectionObserver, SelectionStep};
///
/// let mut seen = 0usize;
/// let mut observer = |step: &SelectionStep| seen = step.iteration + 1;
/// SelectionObserver::on_step(&mut observer, &SelectionStep {
///     iteration: 0,
///     edge: flowmax_graph::EdgeId(3),
///     gain: 1.0,
///     flow: 1.0,
///     pool: 1,
///     probes: 1,
///     ci_pruned: 0,
///     ds_skipped: 0,
///     memo_hits: 0,
/// });
/// assert_eq!(seen, 1);
/// ```
pub trait SelectionObserver {
    /// Called once per committed edge, immediately after the iteration's
    /// bookkeeping completes and before the next iteration begins.
    fn on_step(&mut self, step: &SelectionStep);
}

/// The do-nothing observer behind the unobserved entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl SelectionObserver for NoObserver {
    fn on_step(&mut self, _step: &SelectionStep) {}
}

impl<F: FnMut(&SelectionStep)> SelectionObserver for F {
    fn on_step(&mut self, step: &SelectionStep) {
        self(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(iteration: usize) -> SelectionStep {
        SelectionStep {
            iteration,
            edge: EdgeId(iteration as u32),
            gain: 1.5,
            flow: 1.5 * (iteration + 1) as f64,
            pool: 4,
            probes: 4,
            ci_pruned: 1,
            ds_skipped: 2,
            memo_hits: 0,
        }
    }

    #[test]
    fn closures_are_observers() {
        let mut flows = Vec::new();
        let mut obs = |s: &SelectionStep| flows.push(s.flow);
        for i in 0..3 {
            obs.on_step(&step(i));
        }
        assert_eq!(flows, vec![1.5, 3.0, 4.5]);
    }

    #[test]
    fn no_observer_is_a_no_op() {
        NoObserver.on_step(&step(0));
    }
}
