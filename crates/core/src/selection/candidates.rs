//! Candidate edge maintenance for the greedy loop (§6.1).
//!
//! `candList` contains every edge of the graph that touches the connected
//! selection (so inserting it keeps the subgraph connected to `Q`) and has
//! not been selected yet. It grows as new vertices join the tree.

use std::collections::BTreeSet;

use flowmax_graph::{EdgeId, EdgeSubset, ProbabilisticGraph, VertexId};

/// The candidate list of §6.1, kept in deterministic (sorted) order.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    set: BTreeSet<EdgeId>,
}

impl CandidateSet {
    /// Initializes candidates with the query vertex's incident edges.
    pub fn new(graph: &ProbabilisticGraph, query: VertexId) -> Self {
        let mut s = CandidateSet {
            set: BTreeSet::new(),
        };
        let selected = EdgeSubset::for_graph(graph);
        s.vertex_joined(graph, query, &selected);
        s
    }

    /// Number of current candidates.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no candidate remains.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Registers that `v` joined the tree: all its incident, unselected,
    /// not-yet-listed edges become candidates.
    pub fn vertex_joined(
        &mut self,
        graph: &ProbabilisticGraph,
        v: VertexId,
        selected: &EdgeSubset,
    ) {
        for (_, e) in graph.neighbors(v) {
            if !selected.contains(e) {
                self.set.insert(e);
            }
        }
    }

    /// Removes a candidate (because it was selected).
    pub fn remove(&mut self, e: EdgeId) -> bool {
        self.set.remove(&e)
    }

    /// Whether `e` is currently a candidate.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.set.contains(&e)
    }

    /// Iterates candidates in ascending edge-id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.set.iter().copied()
    }

    /// Snapshot of the candidates as a vector.
    pub fn to_vec(&self) -> Vec<EdgeId> {
        self.set.iter().copied().collect()
    }

    /// The probe pool of one greedy iteration: all candidates except those
    /// `suspended` (§6.4 — delayed candidates never enter the round).
    /// Returns the pool in ascending edge-id order plus the number of
    /// candidates skipped. When *every* candidate is suspended the full
    /// list is returned instead (skipped = 0), so the loop never stalls.
    pub fn probe_pool(&self, suspended: impl Fn(EdgeId) -> bool) -> (Vec<EdgeId>, u64) {
        let mut pool = Vec::with_capacity(self.len());
        let mut skipped = 0u64;
        for e in self.iter() {
            if suspended(e) {
                skipped += 1;
            } else {
                pool.push(e);
            }
        }
        if pool.is_empty() && !self.is_empty() {
            (self.to_vec(), 0)
        } else {
            (pool, skipped)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    /// Star: Q(0) joined to 1, 2; 1 joined to 3.
    fn graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap(); // e0
        b.add_edge(VertexId(0), VertexId(2), p).unwrap(); // e1
        b.add_edge(VertexId(1), VertexId(3), p).unwrap(); // e2
        b.build()
    }

    #[test]
    fn starts_with_query_incident_edges() {
        let g = graph();
        let c = CandidateSet::new(&g, VertexId(0));
        assert_eq!(c.to_vec(), vec![EdgeId(0), EdgeId(1)]);
        assert!(!c.is_empty());
    }

    #[test]
    fn grows_when_vertices_join() {
        let g = graph();
        let mut c = CandidateSet::new(&g, VertexId(0));
        let mut selected = EdgeSubset::for_graph(&g);
        selected.insert(EdgeId(0));
        c.remove(EdgeId(0));
        c.vertex_joined(&g, VertexId(1), &selected);
        assert_eq!(c.to_vec(), vec![EdgeId(1), EdgeId(2)]);
        assert!(c.contains(EdgeId(2)));
    }

    #[test]
    fn selected_edges_never_reappear() {
        let g = graph();
        let mut c = CandidateSet::new(&g, VertexId(0));
        let mut selected = EdgeSubset::for_graph(&g);
        selected.insert(EdgeId(0));
        selected.insert(EdgeId(2));
        c.remove(EdgeId(0));
        c.vertex_joined(&g, VertexId(1), &selected);
        assert!(!c.contains(EdgeId(0)));
        assert!(!c.contains(EdgeId(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn probe_pool_honours_suspensions_with_fallback() {
        let g = graph();
        let c = CandidateSet::new(&g, VertexId(0));
        let (pool, skipped) = c.probe_pool(|_| false);
        assert_eq!(pool, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(skipped, 0);
        let (pool, skipped) = c.probe_pool(|e| e == EdgeId(0));
        assert_eq!(pool, vec![EdgeId(1)]);
        assert_eq!(skipped, 1);
        // Everything suspended: fall back to the full pool, nothing counts
        // as skipped (every candidate is probed after all).
        let (pool, skipped) = c.probe_pool(|_| true);
        assert_eq!(pool, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn isolated_query_yields_empty_set() {
        let mut b = GraphBuilder::new();
        b.add_vertices(2, Weight::ONE);
        let g = b.build();
        let c = CandidateSet::new(&g, VertexId(0));
        assert!(c.is_empty());
    }
}
