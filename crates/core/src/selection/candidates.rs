//! Candidate edge maintenance for the greedy loop (§6.1).
//!
//! `candList` contains every edge of the graph that touches the connected
//! selection (so inserting it keeps the subgraph connected to `Q`) and has
//! not been selected yet. It grows as new vertices join the tree.
//!
//! The set is maintained incrementally as a sorted vector paired with a
//! membership bitmap: `contains` is one bit test, insertion and removal are
//! a binary search plus a shift, and the per-round probe pool reads the
//! already-sorted vector instead of rebuilding an ordered set. A version
//! counter increments on every mutation; together with
//! `CandidateSet::debug_validate` (debug builds only) it lets the
//! incremental selection loop
//! assert after every commit that the maintained list still equals a fresh
//! enumeration from the tree.

use flowmax_graph::{EdgeId, EdgeSubset, ProbabilisticGraph, VertexId};

#[cfg(debug_assertions)]
use crate::ftree::FTree;

/// The candidate list of §6.1, kept in deterministic (sorted) order.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Candidates in ascending edge-id order.
    sorted: Vec<EdgeId>,
    /// One bit per graph edge: set iff the edge is a candidate.
    bitmap: Vec<u64>,
    /// Incremented on every successful insert or remove.
    version: u64,
}

impl CandidateSet {
    /// Initializes candidates with the query vertex's incident edges.
    pub fn new(graph: &ProbabilisticGraph, query: VertexId) -> Self {
        let words = graph.edge_count().div_ceil(64);
        let mut s = CandidateSet {
            sorted: Vec::new(),
            bitmap: vec![0; words],
            version: 0,
        };
        let selected = EdgeSubset::for_graph(graph);
        s.vertex_joined(graph, query, &selected);
        s
    }

    fn bit(e: EdgeId) -> (usize, u64) {
        ((e.0 / 64) as usize, 1u64 << (e.0 % 64))
    }

    /// Number of current candidates.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether no candidate remains.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Mutation count: bumped by every successful insert or remove, so a
    /// consumer holding a pool snapshot can detect staleness in O(1).
    pub fn version(&self) -> u64 {
        self.version
    }

    fn insert(&mut self, e: EdgeId) -> bool {
        let (w, m) = Self::bit(e);
        if self.bitmap[w] & m != 0 {
            return false;
        }
        self.bitmap[w] |= m;
        let pos = self
            .sorted
            .binary_search(&e)
            .expect_err("bitmap said absent");
        self.sorted.insert(pos, e);
        self.version += 1;
        true
    }

    /// Registers that `v` joined the tree: all its incident, unselected,
    /// not-yet-listed edges become candidates.
    pub fn vertex_joined(
        &mut self,
        graph: &ProbabilisticGraph,
        v: VertexId,
        selected: &EdgeSubset,
    ) {
        for (_, e) in graph.neighbors(v) {
            if !selected.contains(e) {
                self.insert(e);
            }
        }
    }

    /// Removes a candidate (because it was selected).
    pub fn remove(&mut self, e: EdgeId) -> bool {
        let (w, m) = Self::bit(e);
        if self.bitmap.get(w).is_none_or(|&word| word & m == 0) {
            return false;
        }
        self.bitmap[w] &= !m;
        let pos = self
            .sorted
            .binary_search(&e)
            .expect("bitmap and sorted list agree");
        self.sorted.remove(pos);
        self.version += 1;
        true
    }

    /// Whether `e` is currently a candidate (one bit test).
    pub fn contains(&self, e: EdgeId) -> bool {
        let (w, m) = Self::bit(e);
        self.bitmap.get(w).is_some_and(|&word| word & m != 0)
    }

    /// Iterates candidates in ascending edge-id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.sorted.iter().copied()
    }

    /// Snapshot of the candidates as a vector.
    pub fn to_vec(&self) -> Vec<EdgeId> {
        self.sorted.clone()
    }

    /// The probe pool of one greedy iteration: all candidates except those
    /// `suspended` (§6.4 — delayed candidates never enter the round).
    /// Returns the pool in ascending edge-id order plus the number of
    /// candidates skipped. When *every* candidate is suspended the full
    /// list is returned instead (skipped = 0), so the loop never stalls.
    pub fn probe_pool(&self, suspended: impl Fn(EdgeId) -> bool) -> (Vec<EdgeId>, u64) {
        let mut pool = Vec::with_capacity(self.len());
        let mut skipped = 0u64;
        for e in self.iter() {
            if suspended(e) {
                skipped += 1;
            } else {
                pool.push(e);
            }
        }
        if pool.is_empty() && !self.is_empty() {
            (self.to_vec(), 0)
        } else {
            (pool, skipped)
        }
    }

    /// Cross-checks the incrementally maintained state against a fresh
    /// enumeration from the tree (debug builds only): the sorted vector
    /// must be strictly ascending, agree bit-for-bit with the bitmap, and
    /// equal the set of unselected graph edges touching a tree vertex.
    /// The incremental greedy loop calls this after every commit.
    #[cfg(debug_assertions)]
    pub(crate) fn debug_validate(&self, graph: &ProbabilisticGraph, tree: &FTree) {
        debug_assert!(
            self.sorted.windows(2).all(|w| w[0] < w[1]),
            "candidate list must be strictly ascending"
        );
        let mut expected_bits = vec![0u64; self.bitmap.len()];
        for &e in &self.sorted {
            let (w, m) = Self::bit(e);
            expected_bits[w] |= m;
        }
        debug_assert_eq!(
            expected_bits, self.bitmap,
            "candidate bitmap out of sync with sorted list"
        );
        let selected = tree.selected_edges();
        let expected: Vec<EdgeId> = graph
            .edges()
            .map(|(e, edge)| (e, edge.endpoints()))
            .filter(|&(e, (a, b))| {
                !selected.contains(e) && (tree.contains_vertex(a) || tree.contains_vertex(b))
            })
            .map(|(e, _)| e)
            .collect();
        debug_assert_eq!(
            expected, self.sorted,
            "candidate list out of sync with tree membership"
        );
    }

    /// Test-only corruption hook: flips `e`'s bitmap bit without touching
    /// the sorted vector, so the next [`debug_validate`] must fire. Used by
    /// the dirty-state regression test to prove the revalidation is live.
    #[cfg(test)]
    pub(crate) fn debug_poison(&mut self, e: EdgeId) {
        let (w, m) = Self::bit(e);
        self.bitmap[w] ^= m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    /// Star: Q(0) joined to 1, 2; 1 joined to 3.
    fn graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap(); // e0
        b.add_edge(VertexId(0), VertexId(2), p).unwrap(); // e1
        b.add_edge(VertexId(1), VertexId(3), p).unwrap(); // e2
        b.build()
    }

    #[test]
    fn starts_with_query_incident_edges() {
        let g = graph();
        let c = CandidateSet::new(&g, VertexId(0));
        assert_eq!(c.to_vec(), vec![EdgeId(0), EdgeId(1)]);
        assert!(!c.is_empty());
    }

    #[test]
    fn grows_when_vertices_join() {
        let g = graph();
        let mut c = CandidateSet::new(&g, VertexId(0));
        let mut selected = EdgeSubset::for_graph(&g);
        selected.insert(EdgeId(0));
        c.remove(EdgeId(0));
        c.vertex_joined(&g, VertexId(1), &selected);
        assert_eq!(c.to_vec(), vec![EdgeId(1), EdgeId(2)]);
        assert!(c.contains(EdgeId(2)));
    }

    #[test]
    fn selected_edges_never_reappear() {
        let g = graph();
        let mut c = CandidateSet::new(&g, VertexId(0));
        let mut selected = EdgeSubset::for_graph(&g);
        selected.insert(EdgeId(0));
        selected.insert(EdgeId(2));
        c.remove(EdgeId(0));
        c.vertex_joined(&g, VertexId(1), &selected);
        assert!(!c.contains(EdgeId(0)));
        assert!(!c.contains(EdgeId(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn probe_pool_honours_suspensions_with_fallback() {
        let g = graph();
        let c = CandidateSet::new(&g, VertexId(0));
        let (pool, skipped) = c.probe_pool(|_| false);
        assert_eq!(pool, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(skipped, 0);
        let (pool, skipped) = c.probe_pool(|e| e == EdgeId(0));
        assert_eq!(pool, vec![EdgeId(1)]);
        assert_eq!(skipped, 1);
        // Everything suspended: fall back to the full pool, nothing counts
        // as skipped (every candidate is probed after all).
        let (pool, skipped) = c.probe_pool(|_| true);
        assert_eq!(pool, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn isolated_query_yields_empty_set() {
        let mut b = GraphBuilder::new();
        b.add_vertices(2, Weight::ONE);
        let g = b.build();
        let c = CandidateSet::new(&g, VertexId(0));
        assert!(c.is_empty());
    }

    #[test]
    fn version_counts_every_mutation() {
        let g = graph();
        let mut c = CandidateSet::new(&g, VertexId(0));
        let v0 = c.version();
        assert_eq!(v0, 2, "two initial inserts");
        assert!(c.remove(EdgeId(0)));
        assert_eq!(c.version(), v0 + 1);
        assert!(!c.remove(EdgeId(0)), "double remove is a no-op");
        assert_eq!(c.version(), v0 + 1, "no-ops do not bump the version");
        let selected = EdgeSubset::for_graph(&g);
        c.vertex_joined(&g, VertexId(1), &selected);
        // Edge 0 re-listed + edge 2 new; edge 1 was already present.
        assert_eq!(c.version(), v0 + 3);
        assert_eq!(c.to_vec(), vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
    }

    #[test]
    fn bitmap_tracks_membership_out_of_range_safe() {
        let g = graph();
        let c = CandidateSet::new(&g, VertexId(0));
        assert!(c.contains(EdgeId(0)));
        assert!(!c.contains(EdgeId(2)));
        // Out-of-range ids are simply absent, not a panic.
        assert!(!c.contains(EdgeId(1_000)));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "candidate bitmap out of sync")]
    fn poisoned_bitmap_fails_validation() {
        use crate::ftree::FTree;
        let g = graph();
        let mut c = CandidateSet::new(&g, VertexId(0));
        let tree = FTree::new(&g, VertexId(0));
        c.debug_validate(&g, &tree);
        c.debug_poison(EdgeId(2));
        c.debug_validate(&g, &tree);
    }
}
