//! Delayed sampling (§6.4, the **DS** heuristic).
//!
//! An edge that yielded little information gain at high sampling cost is
//! unlikely to become the best candidate soon, so it is suspended for
//!
//! ```text
//! d(e') = ⌊ log_c( cost(e') / pot(e') ) ⌋
//! ```
//!
//! iterations, where `cost(e')` is the number of edges that must be sampled
//! to probe `e'`, `pot(e')` the fraction of information *gained* by `e'`
//! relative to the iteration's best edge, and `c > 1` the penalty parameter
//! (paper default `c = 2`; the paper's worked example — 1% gain, cost 10,
//! `d = log₂ 1000 = 9` — shows `pot` is the gain ratio, not the total-flow
//! ratio of the printed formula).

use std::collections::BTreeMap;

use flowmax_graph::EdgeId;

/// Tracks per-edge suspension counters for delayed sampling.
///
/// Keyed by a `BTreeMap`, not a `HashMap`: [`DelayTracker::tick`] and
/// [`DelayTracker::suspended_count`] iterate the map, and the determinism
/// contract (lint rule L1) requires every iterated collection in library
/// code to have a defined order.
#[derive(Debug, Clone)]
pub struct DelayTracker {
    /// Penalty parameter `c` (> 1).
    c: f64,
    delays: BTreeMap<EdgeId, u32>,
}

/// Suspensions are capped so a pathological ratio cannot freeze an edge out
/// of the whole run.
const MAX_DELAY: u32 = 64;

impl DelayTracker {
    /// Creates a tracker with penalty parameter `c` (values `<= 1` are
    /// clamped just above 1, where delays become enormous — the paper's
    /// `c = 1.01` stress setting).
    pub fn new(c: f64) -> Self {
        DelayTracker {
            c: c.max(1.000_001),
            delays: BTreeMap::new(),
        }
    }

    /// Whether `e` is currently suspended.
    pub fn is_suspended(&self, e: EdgeId) -> bool {
        self.delays.get(&e).is_some_and(|&d| d > 0)
    }

    /// Number of currently suspended edges.
    pub fn suspended_count(&self) -> usize {
        self.delays.values().filter(|&&d| d > 0).count()
    }

    /// Advances one greedy iteration: all suspensions tick down by one.
    pub fn tick(&mut self) {
        self.delays.retain(|_, d| {
            *d -= 1;
            *d > 0
        });
    }

    /// Records a probe outcome for a non-selected candidate: `gain` is the
    /// flow gained by the candidate, `best_gain` the gain of the selected
    /// edge, `cost` the number of edges sampled to probe the candidate.
    ///
    /// Returns the suspension applied — `⌊log_c(cost/pot)⌋` iterations
    /// (capped at `MAX_DELAY`), or 0 when the candidate is not suspended.
    pub fn record(&mut self, e: EdgeId, gain: f64, best_gain: f64, cost: usize) -> u32 {
        if cost == 0 {
            return 0; // analytic probes are free: never suspend.
        }
        // pot(e') — clamp into (0, 1] so the logarithm is well defined even
        // for zero/negative measured gains (possible under sampling noise).
        let pot = if best_gain <= 0.0 {
            1.0
        } else {
            (gain / best_gain).clamp(1e-9, 1.0)
        };
        let ratio: f64 = cost as f64 / pot;
        if ratio <= 1.0 {
            return 0;
        }
        let d = ((ratio.ln() / self.c.ln()).floor() as u32).min(MAX_DELAY);
        if d > 0 {
            self.delays.insert(e, d);
        }
        d
    }

    /// Lifts a suspension (used when an edge gets selected regardless, e.g.
    /// after its component was re-estimated for free by memoization).
    pub fn lift(&mut self, e: EdgeId) {
        self.delays.remove(&e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_delay() {
        // 1% gain, cost 10, c = 2 → d = ⌊log₂ 1000⌋ = 9.
        let mut t = DelayTracker::new(2.0);
        assert_eq!(t.record(EdgeId(0), 0.01, 1.0, 10), 9);
        assert!(t.is_suspended(EdgeId(0)));
        // Tick 9 times → released.
        for i in 0..9 {
            assert!(t.is_suspended(EdgeId(0)), "still suspended at tick {i}");
            t.tick();
        }
        assert!(!t.is_suspended(EdgeId(0)));
    }

    #[test]
    fn zero_cost_probes_never_suspend() {
        let mut t = DelayTracker::new(2.0);
        t.record(EdgeId(1), 0.0001, 1.0, 0);
        assert!(!t.is_suspended(EdgeId(1)));
    }

    #[test]
    fn good_candidates_get_short_or_no_delay() {
        let mut t = DelayTracker::new(2.0);
        // Full-gain candidate with cost 1: ratio 1 → no delay.
        t.record(EdgeId(2), 1.0, 1.0, 1);
        assert!(!t.is_suspended(EdgeId(2)));
        // Full-gain candidate with cost 8: ratio 8 → d = 3.
        t.record(EdgeId(3), 1.0, 1.0, 8);
        assert!(t.is_suspended(EdgeId(3)));
        t.tick();
        t.tick();
        t.tick();
        assert!(!t.is_suspended(EdgeId(3)));
    }

    #[test]
    fn small_c_gives_huge_delays() {
        let mut t2 = DelayTracker::new(2.0);
        let mut t101 = DelayTracker::new(1.01);
        t2.record(EdgeId(0), 0.1, 1.0, 10);
        t101.record(EdgeId(0), 0.1, 1.0, 10);
        // log_1.01(100) ≈ 463 → clamped to MAX_DELAY; log_2(100) ≈ 6.
        assert!(t101.suspended_count() == 1 && t2.suspended_count() == 1);
        for _ in 0..7 {
            t2.tick();
            t101.tick();
        }
        assert!(!t2.is_suspended(EdgeId(0)));
        assert!(t101.is_suspended(EdgeId(0)), "c=1.01 suspends much longer");
    }

    #[test]
    fn negative_gain_treated_as_minimal_pot() {
        let mut t = DelayTracker::new(2.0);
        t.record(EdgeId(5), -0.5, 1.0, 4);
        assert!(
            t.is_suspended(EdgeId(5)),
            "noise-negative gains must be suspendable"
        );
    }

    #[test]
    fn lift_removes_suspension() {
        let mut t = DelayTracker::new(2.0);
        t.record(EdgeId(6), 0.01, 1.0, 10);
        t.lift(EdgeId(6));
        assert!(!t.is_suspended(EdgeId(6)));
    }

    #[test]
    fn zero_best_gain_means_no_suspension_from_ratio_one() {
        let mut t = DelayTracker::new(2.0);
        // best_gain = 0 → pot = 1 → ratio = cost.
        t.record(EdgeId(7), 0.0, 0.0, 2);
        assert!(t.is_suspended(EdgeId(7)));
        t.tick();
        assert!(!t.is_suspended(EdgeId(7)));
    }
}
