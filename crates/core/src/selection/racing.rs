//! The batched candidate-racing driver: §6.3's confidence-interval race
//! executed on the parallel sampling engine.
//!
//! One greedy iteration becomes one [`CandidateRace`]: every pool candidate
//! is [`probe_plan`](FTree::probe_plan)ned once (leaf probes resolve
//! analytically, small components enumerate exactly — both establish the
//! race's external lower bound), and the remaining sampled candidates race
//! in rounds. Each round extends every survivor's [`IncrementalComponent`]
//! to the round's whole-batch sample target **as a single multi-candidate
//! job** ([`ParallelEstimator::extend_components`]), re-scores the probes
//! at the grown estimates, and feeds the flow bounds back to the planner,
//! which eliminates dominated candidates (never below the 30-sample CLT
//! floor) and reallocates their unspent budget to the final round.
//!
//! # Determinism contract
//!
//! A candidate component's sample stream is seeded by its *fingerprint*
//! (articulation vertex + edge set) under the run's master seed — not by a
//! call counter — so its estimate at any budget is a pure function of
//! `(master seed, component identity, budget)`. Round targets are derived
//! only from reported bounds. Together with the engine's thread-invariant
//! batching, racing selections are **bit-identical at every thread count**,
//! and re-forming components resume their cached streams instead of
//! re-sampling (the §6.2 memoization, upgraded to incremental form).

use std::collections::HashMap;

use flowmax_graph::{EdgeId, ProbabilisticGraph};
use flowmax_sampling::{
    CandidateRace, IncrementalComponent, LaneStatus, ParallelEstimator, RaceConfig, SeedSequence,
};

use crate::estimator::EstimateProvider;
use crate::ftree::{CommitReplay, FTree, ProbeOutcome, ProbePlan, SampledProbe};
use crate::metrics::SelectionMetrics;
use crate::selection::greedy::{GreedyConfig, ProbeRecord};
use crate::selection::memo::MemoProvider;

/// Stream label separating racing seeds from the estimation-provider seeds
/// derived from the same master.
const RACE_STREAM: u64 = 0x7ACE;

/// Per-run state of the racing engine: the incremental per-component
/// estimates, keyed by component fingerprint.
#[derive(Debug)]
pub(crate) struct RaceDriver {
    lanes: HashMap<u64, IncrementalComponent>,
    engine: ParallelEstimator,
    seq: SeedSequence,
    memoize: bool,
}

struct Racer {
    edge: EdgeId,
    plan: Box<SampledProbe>,
    key: u64,
}

impl RaceDriver {
    pub fn new(config: &GreedyConfig) -> Self {
        RaceDriver {
            lanes: HashMap::new(),
            engine: ParallelEstimator::new(config.threads).with_lane_words(config.lane_words),
            seq: SeedSequence::new(SeedSequence::new(config.seed).child_seed(RACE_STREAM)),
            memoize: config.memoize,
        }
    }

    /// Runs one greedy iteration's probes as a race. Returns the analytic
    /// and exactly-enumerated probes plus every racing candidate that
    /// survived elimination; eliminated candidates are absent (they cannot
    /// win and are not recorded for delayed sampling, matching the scalar
    /// reference race).
    ///
    /// The tree is borrowed mutably because structural plans score by
    /// journalled apply → evaluate → rollback on it; every score leaves it
    /// bit-identical, so across the whole call the tree reads unmodified.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_candidates(
        &mut self,
        graph: &ProbabilisticGraph,
        tree: &mut FTree,
        pool: &[EdgeId],
        base_flow: f64,
        config: &GreedyConfig,
        memo: &mut MemoProvider,
        metrics: &mut SelectionMetrics,
    ) -> Vec<ProbeRecord> {
        if !self.memoize {
            // Without §6.2 memoization, estimates must not persist across
            // iterations; within one race, incremental reuse across rounds
            // is intrinsic to the engine, not a memo effect.
            self.lanes.clear();
        }
        let mut records: Vec<ProbeRecord> = Vec::with_capacity(pool.len());
        let mut racers: Vec<Racer> = Vec::new();
        for &e in pool {
            let plan = if config.cloning_probes {
                tree.probe_plan_cloning(graph, e, base_flow)
            } else {
                tree.probe_plan(graph, e, base_flow)
            };
            match plan.expect("candidates are probeable") {
                ProbePlan::Analytic(outcome) => {
                    metrics.probes += 1;
                    metrics.analytic_probes += 1;
                    records.push(ProbeRecord {
                        edge: e,
                        outcome,
                        replay: None,
                    });
                }
                ProbePlan::Sampled(mut plan) => {
                    let snapshot = plan.snapshot();
                    if snapshot.uncertain_edge_count() <= config.exact_edge_cap {
                        // Exactly-enumerable components take the same
                        // memoized provider path as the scalar loop (the
                        // provider's exact branch neither draws samples nor
                        // advances its RNG call counter, so cache misses
                        // never perturb later sampled estimates).
                        let exact = memo.estimate(plan.snapshot());
                        metrics.probes += 1;
                        let (outcome, replay) = plan.score_keeping(
                            tree,
                            graph,
                            config.include_query,
                            config.alpha,
                            exact,
                        );
                        records.push(ProbeRecord {
                            edge: e,
                            outcome,
                            replay,
                        });
                        continue;
                    }
                    let key = snapshot.fingerprint();
                    racers.push(Racer { edge: e, plan, key });
                }
            }
        }
        if racers.is_empty() {
            return records;
        }

        let external_lower = records
            .iter()
            .map(|r| r.outcome.lower)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut race = CandidateRace::new(
            RaceConfig::paper_default(config.samples),
            racers.len(),
            external_lower,
        );
        let mut outcomes: Vec<Option<ProbeOutcome>> = vec![None; racers.len()];
        // Redo images captured by each racer's latest actual score. Rounds
        // that reuse a previous outcome (cached stream already at target)
        // keep the earlier replay: the lane's estimate is a pure function
        // of its drawn worlds, so the captured post-images still match what
        // the final round would produce.
        let mut replays: Vec<Option<CommitReplay>> = Vec::with_capacity(racers.len());
        replays.resize_with(racers.len(), || None);
        let mut scored_at: Vec<u32> = vec![0; racers.len()];
        while let Some(round) = race.next_round() {
            // Check out the round's lanes (creating missing ones on their
            // fingerprint-derived streams) and extend them in one job.
            let mut lane_buf: Vec<IncrementalComponent> =
                Vec::with_capacity(round.candidates.len());
            let mut targets: Vec<u32> = Vec::with_capacity(round.candidates.len());
            let mut before: Vec<u32> = Vec::with_capacity(round.candidates.len());
            for &i in &round.candidates {
                let racer = &racers[i];
                let lane = self.lanes.remove(&racer.key).unwrap_or_else(|| {
                    IncrementalComponent::new(
                        racer.plan.snapshot().clone(),
                        SeedSequence::new(self.seq.child_seed(racer.key)),
                    )
                });
                if self.memoize && round.round == 0 && lane.drawn() >= round.target {
                    // A cached stream from an earlier iteration already
                    // covers the opening budget: the §6.2 memo effect,
                    // counted once per race like a cache hit.
                    metrics.memo_hits += 1;
                }
                before.push(lane.drawn());
                targets.push(round.target);
                lane_buf.push(lane);
            }
            let new_worlds = self.engine.extend_components(&mut lane_buf, &targets);
            if new_worlds > 0 {
                metrics.samples_drawn += new_worlds;
                for (lane, &had) in lane_buf.iter().zip(&before) {
                    let grew = lane.drawn() - had;
                    if grew > 0 {
                        metrics.edge_samples_drawn +=
                            grew as u64 * lane.snapshot().edge_count() as u64;
                        metrics.components_sampled += 1;
                    }
                }
            }
            let mut bounds: Vec<(usize, f64, f64)> = Vec::with_capacity(round.candidates.len());
            for (&i, lane) in round.candidates.iter().zip(&lane_buf) {
                // Scoring is a pure function of the lane's estimate: a lane
                // whose cached stream already covered this round's target
                // keeps its previous bounds for free (the common case for
                // components unchanged since an earlier iteration).
                let outcome = match outcomes[i] {
                    Some(outcome) if scored_at[i] == lane.drawn() => outcome,
                    _ => {
                        let (outcome, replay) = racers[i].plan.score_keeping(
                            tree,
                            graph,
                            config.include_query,
                            config.alpha,
                            lane.estimate(),
                        );
                        metrics.probes += 1;
                        scored_at[i] = lane.drawn();
                        outcomes[i] = Some(outcome);
                        replays[i] = replay;
                        outcome
                    }
                };
                bounds.push((i, outcome.lower, outcome.upper));
            }
            for (lane, &i) in lane_buf.into_iter().zip(&round.candidates) {
                self.lanes.insert(racers[i].key, lane);
            }
            let summary = race.complete_round(&bounds);
            metrics.ci_pruned += summary.eliminated as u64;
        }

        for (i, racer) in racers.iter().enumerate() {
            if race.status(i) != LaneStatus::Finished {
                continue;
            }
            let outcome = outcomes[i].expect("finished candidates were scored");
            // Publish the finalist's full-budget estimate so the commit's
            // insert_edge reuses it instead of re-sampling.
            if let Some(lane) = self.lanes.get(&racer.key) {
                memo.store(racer.plan.snapshot(), lane.estimate());
            }
            records.push(ProbeRecord {
                edge: racer.edge,
                outcome,
                replay: replays[i].take(),
            });
        }
        records
    }
}
