//! The greedy edge-selection algorithm (§6.1) with the M / CI / DS
//! heuristics (§6.2–6.4).
//!
//! Each iteration probes every candidate edge (Eq. 5), selects the flow
//! maximizer, and inserts it into the F-tree. The heuristics modify the
//! probing loop only:
//!
//! * **M** — probes and insertions share a memoizing estimate provider;
//! * **CI** — candidates whose components must be sampled race each other in
//!   rounds of growing sample budgets; a candidate whose upper flow bound
//!   falls below another's lower bound is pruned (with ≥ 30 samples, §6.3).
//!   Two engines implement the race: the **batched racing engine**
//!   (`selection::racing`, the default) runs each round as one
//!   multi-candidate job on the parallel sampler with incremental
//!   whole-batch estimates and budget reallocation, and the **scalar
//!   reference** re-probes each candidate per round at the schedule's
//!   cumulative budgets — kept as the pinned, easily-auditable baseline;
//! * **DS** — probed-but-not-selected candidates are suspended for
//!   `⌊log_c(cost/pot)⌋` iterations (§6.4); suspended candidates never
//!   enter a race round.

use flowmax_graph::{EdgeId, ProbabilisticGraph, VertexId};
use flowmax_sampling::{BatchSchedule, MIN_SAMPLES_FOR_CLT};

use crate::cancel::{RunControl, StopCause};
use crate::estimator::{EstimateProvider, EstimatorConfig, SamplingProvider};
use crate::ftree::{CommitReplay, FTree, InsertCase, ProbeOutcome, ProbePlan};
use crate::metrics::SelectionMetrics;
use crate::selection::candidates::CandidateSet;
use crate::selection::delayed::DelayTracker;
use crate::selection::memo::MemoProvider;
use crate::selection::observer::{NoObserver, SelectionObserver, SelectionStep};
use crate::selection::racing::RaceDriver;

/// Which implementation drives the §6.3 confidence-interval race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CiEngine {
    /// The batched racing engine: rounds run as single multi-candidate
    /// jobs on the parallel sampler, estimates grow incrementally in whole
    /// 64-world batches, and eliminated candidates' unspent budgets are
    /// reallocated to the finalists. Bit-identical at every thread count.
    #[default]
    BatchedRace,
    /// The scalar reference race: every candidate re-probed from scratch
    /// at each cumulative budget of the schedule. Slower by design; pinned
    /// as the auditable baseline the racing engine is benchmarked against.
    ScalarReference,
}

/// Configuration of a greedy selection run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyConfig {
    /// Edge budget `k` (Def. 4).
    pub budget: usize,
    /// Monte-Carlo samples per component estimation (paper: 1000).
    pub samples: u32,
    /// Components with at most this many uncertain edges are enumerated
    /// exactly instead of sampled (0 = pure Monte-Carlo, the paper setting).
    pub exact_edge_cap: usize,
    /// Enable component memoization (§6.2).
    pub memoize: bool,
    /// Enable confidence-interval pruning (§6.3).
    pub confidence_pruning: bool,
    /// Which engine drives the §6.3 race when `confidence_pruning` is on.
    pub ci_engine: CiEngine,
    /// Enable delayed sampling (§6.4).
    pub delayed_sampling: bool,
    /// DS penalty parameter `c` (paper default 2).
    pub ds_penalty_c: f64,
    /// CI significance level `α` (paper default 0.01).
    pub alpha: f64,
    /// Whether `W(Q)` counts toward the flow.
    pub include_query: bool,
    /// Master seed for all sampling.
    pub seed: u64,
    /// Worker threads for component sampling (results do not depend on
    /// this; see `flowmax_sampling::ParallelEstimator`).
    pub threads: usize,
    /// Lane width for component sampling, in 64-world lane words per BFS
    /// block (supported widths 1, 4, 8; results do not depend on this —
    /// see `flowmax_sampling::ParallelEstimator::with_lane_words`).
    pub lane_words: usize,
    /// Estimate components with the scalar one-world-per-BFS reference
    /// kernel instead of the bit-parallel engine (baseline benchmarking;
    /// never combines with the batched racing engine).
    pub scalar_estimation: bool,
    /// Probe structural candidates through the pinned clone-based engine
    /// (one full F-tree clone per candidate) instead of the undo journal.
    /// Kept selectable as the pre-journal reference for benchmarking and
    /// equivalence tests; results are bit-identical either way.
    pub cloning_probes: bool,
    /// Drive iterations through the incremental engine (the default):
    /// `O(touched)` flow aggregation through the F-tree flow cache, and —
    /// under memoization — commit-by-replay for structural winners instead
    /// of a re-run insertion. `false` selects the journal reference engine
    /// that re-aggregates the whole forest per evaluation; results are
    /// bit-identical either way (ignored under `cloning_probes`, whose
    /// probe clones carry no flow cache).
    pub incremental: bool,
}

impl GreedyConfig {
    /// The plain `FT` algorithm at the paper's defaults, with the
    /// `FLOWMAX_THREADS` worker count (default 1).
    pub fn ft(budget: usize, seed: u64) -> Self {
        GreedyConfig {
            budget,
            samples: 1000,
            exact_edge_cap: 0,
            memoize: false,
            confidence_pruning: false,
            ci_engine: CiEngine::BatchedRace,
            delayed_sampling: false,
            ds_penalty_c: 2.0,
            alpha: 0.01,
            include_query: false,
            seed,
            threads: flowmax_sampling::default_threads(),
            lane_words: flowmax_sampling::default_lane_words(),
            scalar_estimation: false,
            cloning_probes: false,
            incremental: true,
        }
    }

    /// Selects between the incremental engine (`true`, the default) and
    /// the pinned whole-forest journal reference (`false`). Bit-identical
    /// results; the differential harness runs both.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Switches component estimation to the scalar reference kernel.
    pub fn with_scalar_estimation(mut self) -> Self {
        self.scalar_estimation = true;
        self
    }

    /// Switches structural probing to the pinned clone-based reference
    /// engine (benchmarking only; bit-identical results).
    pub fn with_cloning_probes(mut self) -> Self {
        self.cloning_probes = true;
        self
    }

    /// Overrides the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the sampling lane width (64-world lane words per BFS
    /// block). Bit-identical results at every supported width.
    pub fn with_lane_words(mut self, lane_words: usize) -> Self {
        self.lane_words = lane_words;
        self
    }

    /// Enables memoization (`FT+M`).
    pub fn with_memo(mut self) -> Self {
        self.memoize = true;
        self
    }

    /// Enables confidence-interval pruning (`+CI`) on the batched racing
    /// engine.
    pub fn with_ci(mut self) -> Self {
        self.confidence_pruning = true;
        self
    }

    /// Enables `+CI` on the scalar reference race (the pinned baseline).
    pub fn with_scalar_ci(mut self) -> Self {
        self.confidence_pruning = true;
        self.ci_engine = CiEngine::ScalarReference;
        self
    }

    /// Enables delayed sampling (`+DS`).
    pub fn with_ds(mut self) -> Self {
        self.delayed_sampling = true;
        self
    }
}

/// Result of a greedy selection run.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Selected edges, in selection order.
    pub selected: Vec<EdgeId>,
    /// Expected flow after each iteration (under the run's own estimates).
    pub flow_trace: Vec<f64>,
    /// Final expected flow (under the run's own estimates).
    pub final_flow: f64,
    /// Work counters.
    pub metrics: SelectionMetrics,
    /// Why the run stopped early, if it did. `None` means the run used its
    /// full edge budget (or ran out of candidates). When `Some`, the
    /// selection is bit-identical to the same-seed uncontrolled run's
    /// prefix of the same length — the anytime contract.
    pub stopped: Option<StopCause>,
}

pub(crate) struct ProbeRecord {
    pub(crate) edge: EdgeId,
    pub(crate) outcome: ProbeOutcome,
    /// The probe's captured redo images (incremental engine, structural
    /// journal probes only) — the winning record's replay commits the
    /// insertion without re-running it.
    pub(crate) replay: Option<CommitReplay>,
}

/// Runs the greedy selection (§6.1) over `graph` from `query`.
pub fn greedy_select(
    graph: &ProbabilisticGraph,
    query: VertexId,
    config: &GreedyConfig,
) -> SelectionOutcome {
    greedy_select_observed(graph, query, config, &mut NoObserver)
}

/// [`greedy_select`] with a [`SelectionObserver`] receiving one
/// [`SelectionStep`] per committed edge, while the run executes. The
/// observer is passive: observed and unobserved runs are bit-identical.
pub fn greedy_select_observed(
    graph: &ProbabilisticGraph,
    query: VertexId,
    config: &GreedyConfig,
    observer: &mut dyn SelectionObserver,
) -> SelectionOutcome {
    greedy_select_controlled(graph, query, config, &RunControl::unlimited(), observer)
}

/// [`greedy_select_observed`] under a [`RunControl`]: cancellation and
/// deadlines are checked strictly *between* iterations, so a stopped run's
/// selection is the uncontrolled run's prefix, bit for bit —
/// [`SelectionOutcome::stopped`] records why it stopped.
pub fn greedy_select_controlled(
    graph: &ProbabilisticGraph,
    query: VertexId,
    config: &GreedyConfig,
    control: &RunControl,
    observer: &mut dyn SelectionObserver,
) -> SelectionOutcome {
    let estimator = EstimatorConfig {
        exact_edge_cap: config.exact_edge_cap,
        samples: config.samples,
    };
    let mut inner = SamplingProvider::with_parallelism(
        estimator,
        config.seed,
        config.threads,
        config.lane_words,
    );
    inner.use_scalar_kernel(config.scalar_estimation);
    let mut provider = MemoProvider::new(inner, config.memoize);
    let mut tree = FTree::new(graph, query);
    // The incremental engine never combines with the clone-based probe
    // reference: cloned probe trees carry no flow cache.
    let incremental = config.incremental && !config.cloning_probes;
    if incremental {
        tree.enable_flow_cache();
    }
    let mut candidates = CandidateSet::new(graph, query);
    let mut delays = DelayTracker::new(config.ds_penalty_c);
    // The racing driver samples through the batched engine by definition;
    // scalar-estimation baselines fall back to the scalar reference race.
    let mut racer = (config.confidence_pruning
        && config.ci_engine == CiEngine::BatchedRace
        && !config.scalar_estimation)
        .then(|| RaceDriver::new(config));
    let mut metrics = SelectionMetrics::default();
    let mut flow_trace = Vec::with_capacity(config.budget);
    let mut base_flow = 0.0;
    let mut stopped = None;

    for iter in 0..config.budget {
        // The stop check sits strictly between iterations: `iter` edges
        // are committed at this point, and stopping here yields exactly
        // that prefix — never a torn iteration.
        if !control.is_unlimited() {
            if let Some(cause) = control.should_stop(iter) {
                stopped = Some(cause);
                break;
            }
        }
        if candidates.is_empty() {
            break;
        }
        let probes_before = metrics.probes;
        let ci_pruned_before = metrics.ci_pruned;
        let memo_hits_before = metrics.memo_hits + provider.inner().metrics.memo_hits;
        // Gather the probe pool, honouring DS suspensions (§6.4: suspended
        // candidates never enter the round; if everything is suspended the
        // full pool is probed rather than stalling).
        let (pool, skipped) =
            candidates.probe_pool(|e| config.delayed_sampling && delays.is_suspended(e));
        metrics.ds_skipped += skipped;

        // The probe phase is clone-free by construction (journalled
        // apply/rollback); debug builds prove it with the thread-local
        // clone counter. The pinned clone-based reference engine is the
        // one deliberate exception.
        #[cfg(debug_assertions)]
        let clones_before = FTree::debug_clone_count();
        #[cfg(debug_assertions)]
        let full_evals_before = FTree::debug_full_flow_eval_count();
        let mut records = if let Some(racer) = racer.as_mut() {
            racer.probe_candidates(
                graph,
                &mut tree,
                &pool,
                base_flow,
                config,
                &mut provider,
                &mut metrics,
            )
        } else if config.confidence_pruning {
            probe_with_ci_race(
                graph,
                &mut tree,
                &pool,
                base_flow,
                config,
                &mut provider,
                &mut metrics,
            )
        } else {
            probe_all(
                graph,
                &mut tree,
                &pool,
                base_flow,
                config,
                &mut provider,
                &mut metrics,
            )
        };
        #[cfg(debug_assertions)]
        debug_assert!(
            config.cloning_probes || FTree::debug_clone_count() == clones_before,
            "the selection hot loop must not clone the F-tree"
        );
        let Some(best_idx) = best_record(&records) else {
            break;
        };
        let best_edge = records[best_idx].edge;
        let prev_flow = base_flow;
        let best_gain = records[best_idx].outcome.flow - prev_flow;
        let best_case = records[best_idx].outcome.case;

        // Commit. With memoization the insertion reuses the winning probe's
        // estimate; otherwise it re-samples (the paper's plain FT). The
        // incremental engine commits a memoized structural winner by
        // replaying its probe's recorded mutations — zero re-insertion work
        // — gated on the memo still holding the formed component's estimate
        // (it always does: the probe published it), so the metrics come out
        // identical to the reference engine's memo-hit re-insertion.
        // Everything else commits through the journalled apply, which hands
        // the touched slots to the flow cache.
        #[cfg(debug_assertions)]
        let structural_inserts_before = FTree::debug_structural_insert_count();
        let mut replay_slot = records[best_idx].replay.take();
        let mut committed_by_replay = false;
        if incremental && config.memoize {
            if let Some(replay) = replay_slot.as_ref() {
                debug_assert_eq!(replay.edge(), best_edge);
                if provider.lookup(replay.snapshot()).is_some() {
                    tree.commit_replay(replay_slot.take().expect("presence just checked"));
                    committed_by_replay = true;
                }
            }
        }
        if !committed_by_replay {
            if incremental {
                let (report, journal) = tree
                    .apply(graph, best_edge, &mut provider)
                    .expect("candidate edges are insertable");
                debug_assert_eq!(report.case, best_case);
                let touched: Vec<u32> = journal.touched_slot_ids().collect();
                // Dropping the journal keeps the insertion.
                drop(journal);
                tree.cache_mark_dirty(touched);
            } else {
                let report = tree
                    .insert_edge(graph, best_edge, &mut provider)
                    .expect("candidate edges are insertable");
                debug_assert_eq!(report.case, best_case);
            }
        }
        match best_case {
            InsertCase::LeafMono | InsertCase::LeafBi => metrics.insert_case_ii += 1,
            InsertCase::CycleInBi => metrics.insert_case_iiia += 1,
            InsertCase::CycleInMono => metrics.insert_case_iiib += 1,
            InsertCase::CycleAcross => metrics.insert_case_iv += 1,
        }
        candidates.remove(best_edge);
        delays.lift(best_edge);
        // A leaf attachment brings one new vertex whose incident edges
        // become candidates.
        let (a, b) = graph.endpoints(best_edge);
        for v in [a, b] {
            candidates.vertex_joined(graph, v, tree.selected_edges());
        }

        base_flow = if incremental {
            tree.flow_cached_total(graph, config.include_query)
        } else {
            tree.expected_flow(graph, config.include_query)
        };

        // Post-commit revalidation (the clone-counter pattern of the probe
        // phase, extended to the incremental state): the whole iteration
        // must have run zero whole-forest traversals and — for memoized
        // structural winners — zero re-insertions, and the cached base
        // flow and versioned candidate pool must match a from-scratch
        // recomputation bit for bit.
        #[cfg(debug_assertions)]
        if incremental {
            assert_eq!(
                FTree::debug_full_flow_eval_count(),
                full_evals_before,
                "incremental iterations must never fall back to whole-forest flow evaluation"
            );
            if config.memoize
                && matches!(best_case, InsertCase::CycleInMono | InsertCase::CycleAcross)
            {
                assert_eq!(
                    FTree::debug_structural_insert_count(),
                    structural_inserts_before,
                    "memoized structural winners must commit by replay, not re-insertion"
                );
            }
            assert_eq!(
                base_flow.to_bits(),
                tree.expected_flow(graph, config.include_query).to_bits(),
                "cached base flow diverged from the whole-forest reference"
            );
            candidates.debug_validate(graph, &tree);
        }

        flow_trace.push(base_flow);
        observer.on_step(&SelectionStep {
            iteration: iter,
            edge: best_edge,
            gain: base_flow - prev_flow,
            flow: base_flow,
            pool: pool.len(),
            probes: metrics.probes - probes_before,
            ci_pruned: metrics.ci_pruned - ci_pruned_before,
            ds_skipped: skipped,
            memo_hits: metrics.memo_hits + provider.inner().metrics.memo_hits - memo_hits_before,
        });

        if config.delayed_sampling {
            // Age existing suspensions *before* recording this iteration's:
            // a fresh `d(e') = ⌊log_c(cost/pot)⌋` must suspend the candidate
            // for the next d full iterations (the paper's worked example:
            // d = 9 ⇒ nine skipped probe rounds), not d − 1.
            delays.tick();
            for r in &records {
                if r.edge != best_edge {
                    delays.record(
                        r.edge,
                        r.outcome.flow - prev_flow,
                        best_gain,
                        r.outcome.sampling_cost_edges,
                    );
                }
            }
        }
    }

    metrics.absorb(&provider.inner().metrics);
    SelectionOutcome {
        selected: tree.selected_edges().iter().collect(),
        flow_trace,
        final_flow: base_flow,
        metrics,
        stopped,
    }
}

/// Index of the record with maximal flow (ties: lowest edge id, for
/// deterministic selection).
fn best_record(records: &[ProbeRecord]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, r) in records.iter().enumerate() {
        match best {
            None => best = Some(i),
            Some(j) => {
                let rj = &records[j];
                if r.outcome.flow > rj.outcome.flow
                    || (r.outcome.flow == rj.outcome.flow && r.edge < rj.edge)
                {
                    best = Some(i);
                }
            }
        }
    }
    best
}

/// One probe through the engine the config selects: the journal-based
/// default, or the pinned clone-based reference (`cloning_probes`).
/// Bit-identical outcomes either way.
fn probe_once(
    tree: &mut FTree,
    graph: &ProbabilisticGraph,
    e: EdgeId,
    base_flow: f64,
    config: &GreedyConfig,
    provider: &mut MemoProvider,
) -> (ProbeOutcome, Option<CommitReplay>) {
    if config.cloning_probes {
        let plan = tree
            .probe_plan_cloning(graph, e, base_flow)
            .expect("candidates are probeable");
        return match plan {
            ProbePlan::Analytic(outcome) => (outcome, None),
            ProbePlan::Sampled(mut sampled) => {
                let estimate = provider.estimate(sampled.snapshot());
                sampled.score_keeping(tree, graph, config.include_query, config.alpha, estimate)
            }
        };
    }
    // Journal engine: the one-shot probe fuses plan + score into a single
    // journalled apply (capturing the redo images when the incremental
    // flow cache is enabled).
    tree.probe_edge_keeping(
        graph,
        e,
        base_flow,
        config.include_query,
        config.alpha,
        provider,
    )
    .expect("candidates are probeable")
}

/// Plain probing: every pool edge probed once at the full sample budget.
fn probe_all(
    graph: &ProbabilisticGraph,
    tree: &mut FTree,
    pool: &[EdgeId],
    base_flow: f64,
    config: &GreedyConfig,
    provider: &mut MemoProvider,
    metrics: &mut SelectionMetrics,
) -> Vec<ProbeRecord> {
    let mut records = Vec::with_capacity(pool.len());
    for &e in pool {
        let (outcome, replay) = probe_once(tree, graph, e, base_flow, config, provider);
        metrics.probes += 1;
        if outcome.sampling_cost_edges == 0 {
            metrics.analytic_probes += 1;
        }
        records.push(ProbeRecord {
            edge: e,
            outcome,
            replay,
        });
    }
    records
}

/// CI racing (§6.3): sampled candidates are probed at growing sample
/// budgets; a candidate whose upper bound is below the best lower bound is
/// pruned before the full budget is spent.
fn probe_with_ci_race(
    graph: &ProbabilisticGraph,
    tree: &mut FTree,
    pool: &[EdgeId],
    base_flow: f64,
    config: &GreedyConfig,
    provider: &mut MemoProvider,
    metrics: &mut SelectionMetrics,
) -> Vec<ProbeRecord> {
    // Cumulative budgets, e.g. 50, 150, 350, 750, `samples` — rounds below
    // the CLT floor are dropped (their bounds may not eliminate anyway).
    let schedule = BatchSchedule::paper_default(config.samples);
    let mut budgets: Vec<u32> = schedule
        .cumulative_budgets()
        .into_iter()
        .filter(|&acc| acc >= MIN_SAMPLES_FOR_CLT)
        .collect();
    if budgets.is_empty() {
        budgets.push(config.samples);
    }

    // First pass at the smallest budget classifies candidates.
    provider.inner_mut().set_samples(budgets[0]);
    let mut analytic: Vec<ProbeRecord> = Vec::new();
    let mut racing: Vec<ProbeRecord> = Vec::new();
    for &e in pool {
        let (outcome, replay) = probe_once(tree, graph, e, base_flow, config, provider);
        metrics.probes += 1;
        if outcome.sampling_cost_edges == 0 {
            metrics.analytic_probes += 1;
            analytic.push(ProbeRecord {
                edge: e,
                outcome,
                replay,
            });
        } else {
            racing.push(ProbeRecord {
                edge: e,
                outcome,
                replay,
            });
        }
    }

    let analytic_best_lower = analytic
        .iter()
        .map(|r| r.outcome.lower)
        .fold(f64::NEG_INFINITY, f64::max);

    for round in 0..budgets.len() {
        // Prune: a racer whose upper bound cannot beat the best lower bound
        // is eliminated (1 − α confidence, Def. 10).
        let best_lower = racing
            .iter()
            .map(|r| r.outcome.lower)
            .fold(analytic_best_lower, f64::max);
        let before = racing.len();
        racing.retain(|r| r.outcome.upper >= best_lower);
        metrics.ci_pruned += (before - racing.len()) as u64;
        if racing.is_empty() {
            break;
        }
        // Last round's estimates are already at full budget.
        if round + 1 == budgets.len() {
            break;
        }
        let next_budget = budgets[round + 1];
        provider.inner_mut().set_samples(next_budget);
        for r in &mut racing {
            let (outcome, replay) = probe_once(tree, graph, r.edge, base_flow, config, provider);
            metrics.probes += 1;
            r.outcome = outcome;
            r.replay = replay;
        }
    }
    provider.inner_mut().set_samples(config.samples);

    analytic.extend(racing);
    analytic
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Q(0) with two branches: a high-value branch (weight 10 at v1) and a
    /// low-value one (weight 1 at v2), plus a chord 1-2.
    fn small_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertex(Weight::ZERO); // Q
        b.add_vertex(Weight::new(10.0).unwrap());
        b.add_vertex(Weight::ONE);
        b.add_vertex(Weight::new(5.0).unwrap());
        b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap(); // e0
        b.add_edge(VertexId(0), VertexId(2), p(0.9)).unwrap(); // e1
        b.add_edge(VertexId(1), VertexId(2), p(0.9)).unwrap(); // e2
        b.add_edge(VertexId(2), VertexId(3), p(0.9)).unwrap(); // e3
        b.build()
    }

    #[test]
    fn greedy_picks_high_value_edge_first() {
        let g = small_graph();
        let out = greedy_select(&g, VertexId(0), &GreedyConfig::ft(1, 1));
        assert_eq!(out.selected, vec![EdgeId(0)], "weight-10 branch first");
        assert!((out.final_flow - 9.0).abs() < 1e-9);
        assert_eq!(out.flow_trace.len(), 1);
    }

    #[test]
    fn budget_exhausts_or_candidates_do() {
        let g = small_graph();
        let out = greedy_select(&g, VertexId(0), &GreedyConfig::ft(10, 1));
        assert_eq!(out.selected.len(), 4, "only 4 edges exist");
        assert_eq!(out.metrics.insertions(), 4);
    }

    #[test]
    fn flow_trace_is_monotone_under_exact_estimation() {
        let g = small_graph();
        let mut cfg = GreedyConfig::ft(4, 1);
        cfg.exact_edge_cap = 20;
        let out = greedy_select(&g, VertexId(0), &cfg);
        for w in out.flow_trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "adding edges never hurts: {:?}",
                out.flow_trace
            );
        }
    }

    #[test]
    fn memoization_reduces_sampling() {
        let g = small_graph();
        let base = greedy_select(&g, VertexId(0), &GreedyConfig::ft(4, 1));
        let memo = greedy_select(&g, VertexId(0), &GreedyConfig::ft(4, 1).with_memo());
        assert!(
            memo.metrics.memo_hits > 0,
            "commits should reuse probe estimates"
        );
        assert!(
            memo.metrics.components_sampled < base.metrics.components_sampled,
            "memoized run must sample fewer components ({} vs {})",
            memo.metrics.components_sampled,
            base.metrics.components_sampled
        );
        assert_eq!(memo.selected.len(), base.selected.len());
    }

    #[test]
    fn heuristic_stacks_produce_connected_selections() {
        let g = small_graph();
        let configs = [
            GreedyConfig::ft(4, 2),
            GreedyConfig::ft(4, 2).with_memo(),
            GreedyConfig::ft(4, 2).with_memo().with_ci(),
            GreedyConfig::ft(4, 2).with_memo().with_ds(),
            GreedyConfig::ft(4, 2).with_memo().with_ci().with_ds(),
        ];
        for cfg in configs {
            let out = greedy_select(&g, VertexId(0), &cfg);
            assert!(!out.selected.is_empty());
            assert!(out.final_flow > 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = small_graph();
        let cfg = GreedyConfig::ft(4, 7).with_memo().with_ci().with_ds();
        let a = greedy_select(&g, VertexId(0), &cfg);
        let b = greedy_select(&g, VertexId(0), &cfg);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.final_flow, b.final_flow);
    }

    #[test]
    fn isolated_query_returns_empty() {
        let mut b = GraphBuilder::new();
        b.add_vertices(3, Weight::ONE);
        b.add_edge(VertexId(1), VertexId(2), p(0.5)).unwrap();
        let g = b.build();
        let out = greedy_select(&g, VertexId(0), &GreedyConfig::ft(3, 1));
        assert!(out.selected.is_empty());
        assert_eq!(out.final_flow, 0.0);
    }
}
