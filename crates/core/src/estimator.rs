//! Pluggable per-component reachability estimation.
//!
//! The F-tree needs `BC.P(v)` — the probability each vertex of a
//! bi-connected component reaches its articulation vertex — whenever a
//! component (re)forms. The paper uses Monte-Carlo sampling with a fixed
//! `samplesize` (§5.3). We generalize behind [`EstimateProvider`] so that
//!
//! * the selection layer can inject **memoization** (§6.2) without the tree
//!   knowing about it,
//! * tests can force **exact enumeration** (components are small) and verify
//!   the decomposition against whole-graph ground truth bit-for-bit, and
//! * experiments can use a **hybrid** low-variance evaluator.

use flowmax_sampling::{
    default_threads, ComponentEstimate, ComponentGraph, ParallelEstimator, SeedSequence,
};

use crate::metrics::SelectionMetrics;

/// How component reachability functions are computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Components with at most this many *uncertain* edges are enumerated
    /// exactly; `0` disables exact evaluation entirely (the paper's setting).
    pub exact_edge_cap: usize,
    /// Monte-Carlo samples for components above the cap (paper: 1000).
    pub samples: u32,
}

impl EstimatorConfig {
    /// The paper's pure Monte-Carlo estimator (§7.2: 1000 samples).
    pub fn monte_carlo(samples: u32) -> Self {
        EstimatorConfig {
            exact_edge_cap: 0,
            samples,
        }
    }

    /// Exact enumeration up to `cap` uncertain edges, sampling beyond.
    pub fn hybrid(cap: usize, samples: u32) -> Self {
        EstimatorConfig {
            exact_edge_cap: cap,
            samples,
        }
    }

    /// Exact-only estimation for tests (falls back to sampling above the
    /// hard enumeration cap of 24 edges, which tests should never reach).
    pub fn exact() -> Self {
        EstimatorConfig {
            exact_edge_cap: 24,
            samples: 1000,
        }
    }
}

/// A source of component reachability estimates.
///
/// Implementations may sample, enumerate, memoize, or replay recorded
/// estimates; the F-tree only requires that [`ComponentEstimate::reach`] is
/// indexed consistently with `snapshot.vertices()`.
pub trait EstimateProvider {
    /// Produces the reachability function for a component snapshot.
    fn estimate(&mut self, snapshot: &ComponentGraph) -> ComponentEstimate;
}

/// The default provider: exact enumeration below the configured cap,
/// bit-parallel Monte-Carlo sampling otherwise, with full metrics
/// accounting.
///
/// Each `estimate` call derives an independent seed-sequence child from the
/// provider's master seed and a call counter, then hands the batched
/// [`ParallelEstimator`] engine the component. Results are therefore a pure
/// function of `(seed, call index)` — identical for every worker-thread
/// count.
#[derive(Debug)]
pub struct SamplingProvider {
    config: EstimatorConfig,
    seq: SeedSequence,
    calls: u64,
    engine: ParallelEstimator,
    scalar_kernel: bool,
    /// Counters describing the work performed.
    pub metrics: SelectionMetrics,
}

impl SamplingProvider {
    /// Creates a provider with a deterministic seed stream and the
    /// [`default_threads`] worker count (`FLOWMAX_THREADS` or 1).
    pub fn new(config: EstimatorConfig, seed: u64) -> Self {
        Self::with_threads(config, seed, default_threads())
    }

    /// Creates a provider with an explicit worker count and the ambient
    /// `FLOWMAX_LANES` lane width.
    pub fn with_threads(config: EstimatorConfig, seed: u64, threads: usize) -> Self {
        Self::with_parallelism(
            config,
            seed,
            threads,
            flowmax_sampling::default_lane_words(),
        )
    }

    /// Creates a provider with explicit worker count and lane width
    /// (64-world lane words per BFS block; supported widths 1, 4, 8).
    /// Results never depend on either — only wall-clock time does.
    pub fn with_parallelism(
        config: EstimatorConfig,
        seed: u64,
        threads: usize,
        lane_words: usize,
    ) -> Self {
        SamplingProvider {
            config,
            seq: SeedSequence::new(SeedSequence::new(seed).child_seed(0xC0FFEE)),
            calls: 0,
            engine: ParallelEstimator::new(threads).with_lane_words(lane_words),
            scalar_kernel: false,
            metrics: SelectionMetrics::default(),
        }
    }

    /// Switches sampled estimation to the scalar one-world-per-BFS kernel —
    /// the pre-batching reference engine, kept selectable so selection-level
    /// benchmarks and tests can compare against it. Still deterministic per
    /// `(seed, call index)`, but on a different (single) coin stream than
    /// the lane-per-world batched engine.
    pub fn use_scalar_kernel(&mut self, on: bool) {
        self.scalar_kernel = on;
    }

    /// The active configuration.
    pub fn config(&self) -> EstimatorConfig {
        self.config
    }

    /// The worker count used for sampled components.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Adjusts the Monte-Carlo sample budget (used by the §6.3 confidence
    /// races, which probe candidates at increasing budgets).
    pub fn set_samples(&mut self, samples: u32) {
        self.config.samples = samples;
    }
}

impl EstimateProvider for SamplingProvider {
    fn estimate(&mut self, snapshot: &ComponentGraph) -> ComponentEstimate {
        if snapshot.uncertain_edge_count() <= self.config.exact_edge_cap {
            if let Some(exact) = snapshot.exact_reachability(self.config.exact_edge_cap) {
                self.metrics.components_enumerated += 1;
                return exact;
            }
        }
        self.metrics.components_sampled += 1;
        self.metrics.samples_drawn += self.config.samples as u64;
        self.metrics.edge_samples_drawn +=
            self.config.samples as u64 * snapshot.edge_count() as u64;
        let call_seq = SeedSequence::new(self.seq.child_seed(self.calls));
        self.calls += 1;
        if self.scalar_kernel {
            let mut rng = call_seq.rng(0);
            return snapshot.sample_reachability(self.config.samples, &mut rng);
        }
        self.engine
            .sample_component(snapshot, self.config.samples, &call_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, VertexId, Weight};

    fn triangle_snapshot() -> ComponentGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(3, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        let e0 = b.add_edge(VertexId(0), VertexId(1), p).unwrap();
        let e1 = b.add_edge(VertexId(1), VertexId(2), p).unwrap();
        let e2 = b.add_edge(VertexId(0), VertexId(2), p).unwrap();
        let g = b.build();
        ComponentGraph::build(&g, VertexId(0), &[e0, e1, e2])
    }

    #[test]
    fn monte_carlo_config_never_enumerates() {
        let mut p = SamplingProvider::new(EstimatorConfig::monte_carlo(500), 1);
        let est = p.estimate(&triangle_snapshot());
        assert!(!est.is_exact());
        assert_eq!(p.metrics.components_sampled, 1);
        assert_eq!(p.metrics.components_enumerated, 0);
        assert_eq!(p.metrics.samples_drawn, 500);
        assert_eq!(p.metrics.edge_samples_drawn, 1500);
    }

    #[test]
    fn exact_config_enumerates_small_components() {
        let mut p = SamplingProvider::new(EstimatorConfig::exact(), 1);
        let est = p.estimate(&triangle_snapshot());
        assert!(est.is_exact());
        assert!((est.reach(1) - 0.625).abs() < 1e-12);
        assert_eq!(p.metrics.components_enumerated, 1);
        assert_eq!(p.metrics.components_sampled, 0);
    }

    #[test]
    fn hybrid_splits_by_size() {
        let mut p = SamplingProvider::new(EstimatorConfig::hybrid(2, 100), 1);
        // Triangle has 3 uncertain edges > cap 2 → sampled.
        let est = p.estimate(&triangle_snapshot());
        assert!(!est.is_exact());
    }

    #[test]
    fn provider_is_thread_count_invariant() {
        let snap = triangle_snapshot();
        let run = |threads| {
            let mut p =
                SamplingProvider::with_threads(EstimatorConfig::monte_carlo(300), 5, threads);
            // Two calls: per-call child seeds must line up across runs too.
            (p.estimate(&snap), p.estimate(&snap))
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(8));
        assert!(SamplingProvider::new(EstimatorConfig::exact(), 1).threads() >= 1);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let snap = triangle_snapshot();
        let run = |seed| {
            let mut p = SamplingProvider::new(EstimatorConfig::monte_carlo(200), seed);
            let est = p.estimate(&snap);
            (est.reach(1), est.reach(2))
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
