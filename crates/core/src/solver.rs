//! The algorithm roster (§7.2), the shared uniform final-flow evaluator,
//! and the legacy one-shot `solve` entry point.
//!
//! The paper compares algorithms by the expected flow of their *selected
//! subgraphs*. Since each algorithm estimates flow with different noise
//! during selection, every run re-evaluates its final selection with one
//! shared high-fidelity evaluator (exact for small components, heavily
//! sampled otherwise) so reported flows are comparable.
//!
//! [`solve`] and [`SolverConfig`] are **deprecated shims** over the
//! session API ([`crate::session::Session`]): they rebuild all per-graph
//! state on every call and panic instead of returning errors. They produce
//! bit-identical results to the equivalent session query and remain for
//! migration only.

use std::time::Duration;

use flowmax_graph::{EdgeId, ProbabilisticGraph, VertexId};

use crate::error::CoreError;
use crate::estimator::{EstimatorConfig, SamplingProvider};
use crate::ftree::FTree;
use crate::metrics::SelectionMetrics;
use crate::selection::greedy::CiEngine;
use crate::selection::observer::NoObserver;
use crate::session::{QuerySpec, Session};

/// The algorithms evaluated in §7.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Whole-graph sampling greedy, no F-tree \[7\], \[22\].
    Naive,
    /// Maximum-probability spanning tree (first `k` edges).
    Dijkstra,
    /// F-tree greedy (§5.3).
    Ft,
    /// F-tree + memoization (§6.2).
    FtM,
    /// F-tree + memoization + confidence intervals (§6.3).
    FtMCi,
    /// F-tree + memoization + delayed sampling (§6.4).
    FtMDs,
    /// All heuristics combined.
    FtMCiDs,
}

impl Algorithm {
    /// All algorithms in the paper's presentation order.
    pub fn all() -> [Algorithm; 7] {
        [
            Algorithm::Naive,
            Algorithm::Dijkstra,
            Algorithm::Ft,
            Algorithm::FtM,
            Algorithm::FtMCi,
            Algorithm::FtMDs,
            Algorithm::FtMCiDs,
        ]
    }

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Naive => "Naive",
            Algorithm::Dijkstra => "Dijkstra",
            Algorithm::Ft => "FT",
            Algorithm::FtM => "FT+M",
            Algorithm::FtMCi => "FT+M+CI",
            Algorithm::FtMDs => "FT+M+DS",
            Algorithm::FtMCiDs => "FT+M+CI+DS",
        }
    }

    /// Parses the paper's display name (case-insensitive).
    pub fn parse(s: &str) -> Option<Algorithm> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "NAIVE" => Algorithm::Naive,
            "DIJKSTRA" => Algorithm::Dijkstra,
            "FT" => Algorithm::Ft,
            "FT+M" => Algorithm::FtM,
            "FT+M+CI" => Algorithm::FtMCi,
            "FT+M+DS" => Algorithm::FtMDs,
            "FT+M+CI+DS" => Algorithm::FtMCiDs,
            _ => return None,
        })
    }
}

impl std::str::FromStr for Algorithm {
    type Err = CoreError;

    /// [`Algorithm::parse`] with a typed error for `Result` pipelines.
    fn from_str(s: &str) -> Result<Algorithm, CoreError> {
        Algorithm::parse(s).ok_or_else(|| CoreError::UnknownAlgorithm(s.to_string()))
    }
}

/// Solver configuration shared by all algorithms.
#[deprecated(
    since = "0.5.0",
    note = "configure queries through `Session::query`'s builder instead"
)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Edge budget `k`.
    pub budget: usize,
    /// Monte-Carlo samples per estimation (paper: 1000).
    pub samples: u32,
    /// Components with at most this many uncertain edges are enumerated
    /// exactly during *selection* instead of sampled (0 = pure Monte-Carlo,
    /// the paper's setting; tests use it to pin selections exactly).
    pub exact_edge_cap: usize,
    /// CI significance level `α` (paper: 0.01).
    pub alpha: f64,
    /// Race engine for the `CI` variants: the batched racing engine by
    /// default, or the scalar reference race for baseline comparisons.
    pub ci_engine: CiEngine,
    /// DS penalty `c` (paper: 2).
    pub ds_penalty_c: f64,
    /// Whether `W(Q)` counts toward the flow.
    pub include_query: bool,
    /// Master seed.
    pub seed: u64,
    /// Evaluation estimator for the final reported flow.
    pub evaluation: EstimatorConfig,
    /// Worker threads for Monte-Carlo sampling (CLI `--threads`,
    /// `FLOWMAX_THREADS`). Changing this never changes results, only
    /// wall-clock time — the batched engine is thread-count invariant.
    pub threads: usize,
    /// Estimate components with the scalar one-world-per-BFS reference
    /// kernel instead of the bit-parallel engine (baseline benchmarking).
    pub scalar_estimation: bool,
}

#[allow(deprecated)]
impl SolverConfig {
    /// Paper defaults for `algorithm` at budget `k`, with the
    /// `FLOWMAX_THREADS` worker count (default 1).
    pub fn paper(algorithm: Algorithm, budget: usize, seed: u64) -> Self {
        SolverConfig {
            algorithm,
            budget,
            samples: 1000,
            exact_edge_cap: 0,
            alpha: 0.01,
            ci_engine: CiEngine::BatchedRace,
            ds_penalty_c: 2.0,
            include_query: false,
            seed,
            evaluation: EstimatorConfig::hybrid(16, 3000),
            threads: flowmax_sampling::default_threads(),
            scalar_estimation: false,
        }
    }
}

/// Result of a solver run.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The algorithm that produced it.
    pub algorithm: Algorithm,
    /// Selected edges in selection order.
    pub selected: Vec<EdgeId>,
    /// Flow of the selection under the shared high-fidelity evaluator.
    pub flow: f64,
    /// Flow as estimated by the algorithm itself during selection.
    pub algorithm_flow: f64,
    /// Wall-clock time of the selection (excludes final evaluation).
    pub elapsed: Duration,
    /// Work counters from the selection.
    pub metrics: SelectionMetrics,
}

/// Runs one algorithm end to end and evaluates its selection uniformly.
///
/// This is a thin shim over the session API: it builds a throwaway
/// [`Session`], runs one query, and discards the shared state. The
/// destructuring below is exhaustive on purpose — adding a knob to
/// `SolverConfig` without routing it through [`QuerySpec`] (the single
/// conversion path to `GreedyConfig`) is a compile error, not a silently
/// ignored field.
#[deprecated(
    since = "0.5.0",
    note = "use `Session::new(graph).query(q)?...run()?`; one session serves many queries"
)]
#[allow(deprecated)]
pub fn solve(graph: &ProbabilisticGraph, query: VertexId, config: &SolverConfig) -> SolveResult {
    let SolverConfig {
        algorithm,
        budget,
        samples,
        exact_edge_cap,
        alpha,
        ci_engine,
        ds_penalty_c,
        include_query,
        seed,
        evaluation,
        threads,
        scalar_estimation,
    } = *config;
    let session = Session::new(graph)
        .with_threads(threads)
        .with_seed(seed)
        .with_evaluation(evaluation);
    let spec = QuerySpec {
        vertex: query,
        algorithm,
        budget,
        samples,
        exact_edge_cap,
        alpha,
        ci_engine,
        ds_penalty_c,
        include_query,
        seed,
        scalar_estimation,
        // The legacy config predates the journal engine; the shim always
        // uses the (bit-identical) default probes.
        cloning_probes: false,
        incremental: true,
    };
    // The legacy API tolerated degenerate configs (zero budget, isolated
    // queries) without erroring, so the shim skips builder validation.
    let run = session.execute(
        &spec,
        session.threads(),
        &crate::cancel::RunControl::unlimited(),
        &mut NoObserver,
    );
    SolveResult {
        algorithm,
        // The legacy output order (ascending ids for F-tree algorithms),
        // not the session's commit order.
        selected: run.evaluated_order,
        flow: run.flow,
        algorithm_flow: run.algorithm_flow,
        elapsed: run.elapsed,
        metrics: run.metrics,
    }
}

/// Evaluates the expected flow of an arbitrary edge selection by building an
/// F-tree with the given estimator. Edges are inserted in connectivity
/// order; edges never connected to `Q` contribute nothing and are skipped.
///
/// Uses the `FLOWMAX_THREADS` worker count; see
/// [`evaluate_selection_with_threads`] for an explicit override.
pub fn evaluate_selection(
    graph: &ProbabilisticGraph,
    query: VertexId,
    edges: &[EdgeId],
    estimator: EstimatorConfig,
    include_query: bool,
    seed: u64,
) -> f64 {
    evaluate_selection_with_threads(
        graph,
        query,
        edges,
        estimator,
        include_query,
        seed,
        flowmax_sampling::default_threads(),
    )
}

/// [`evaluate_selection`] with an explicit sampling worker count (results
/// are identical for every thread count; only wall-clock time changes).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_selection_with_threads(
    graph: &ProbabilisticGraph,
    query: VertexId,
    edges: &[EdgeId],
    estimator: EstimatorConfig,
    include_query: bool,
    seed: u64,
    threads: usize,
) -> f64 {
    evaluate_selection_with_parallelism(
        graph,
        query,
        edges,
        estimator,
        include_query,
        seed,
        threads,
        flowmax_sampling::default_lane_words(),
    )
}

/// [`evaluate_selection`] with explicit sampling worker count and lane
/// width (64-world lane words per BFS block; supported widths 1, 4, 8).
/// Results are identical for every thread count and lane width; only
/// wall-clock time changes.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_selection_with_parallelism(
    graph: &ProbabilisticGraph,
    query: VertexId,
    edges: &[EdgeId],
    estimator: EstimatorConfig,
    include_query: bool,
    seed: u64,
    threads: usize,
    lane_words: usize,
) -> f64 {
    let mut provider = SamplingProvider::with_parallelism(estimator, seed, threads, lane_words);
    let mut tree = FTree::new(graph, query);
    let mut remaining: Vec<EdgeId> = edges.to_vec();
    loop {
        let mut progressed = false;
        remaining.retain(|&e| {
            let (a, b) = graph.endpoints(e);
            if tree.contains_vertex(a) || tree.contains_vertex(b) {
                tree.insert_edge(graph, e, &mut provider)
                    .expect("connected, unselected edge");
                progressed = true;
                false
            } else {
                true
            }
        });
        if remaining.is_empty() || !progressed {
            break;
        }
    }
    tree.expected_flow(graph, include_query)
}

#[cfg(test)]
mod tests {
    // These tests pin the legacy shim's behaviour (the session API has its
    // own suite in `session.rs` and `tests/session_api.rs`).
    #![allow(deprecated)]

    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// A graph where greedy flow ranking is unambiguous.
    fn graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertex(Weight::ZERO); // Q
        for w in [5.0, 3.0, 8.0, 1.0] {
            b.add_vertex(Weight::new(w).unwrap());
        }
        b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p(0.8)).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p(0.7)).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p(0.6)).unwrap();
        b.add_edge(VertexId(3), VertexId(4), p(0.5)).unwrap();
        b.build()
    }

    #[test]
    fn all_algorithms_run_and_respect_budget() {
        let g = graph();
        for alg in Algorithm::all() {
            let r = solve(&g, VertexId(0), &SolverConfig::paper(alg, 3, 1));
            assert!(r.selected.len() <= 3, "{} overspent", alg.name());
            assert!(r.flow > 0.0, "{} found no flow", alg.name());
            assert!(r.flow <= g.total_weight() + 1e-9);
        }
    }

    #[test]
    fn ft_beats_or_matches_dijkstra_here() {
        let g = graph();
        let ft = solve(&g, VertexId(0), &SolverConfig::paper(Algorithm::FtM, 3, 1));
        let dj = solve(
            &g,
            VertexId(0),
            &SolverConfig::paper(Algorithm::Dijkstra, 3, 1),
        );
        assert!(
            ft.flow >= dj.flow - 1e-9,
            "FT {} vs Dijkstra {}",
            ft.flow,
            dj.flow
        );
    }

    #[test]
    fn uniform_evaluation_is_deterministic() {
        let g = graph();
        let edges = vec![EdgeId(0), EdgeId(1), EdgeId(2)];
        let cfg = EstimatorConfig::hybrid(16, 500);
        let a = evaluate_selection(&g, VertexId(0), &edges, cfg, false, 3);
        let b = evaluate_selection(&g, VertexId(0), &edges, cfg, false, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn evaluation_skips_disconnected_edges() {
        let g = graph();
        // Edge 4 (3-4) alone is not connected to Q: zero flow.
        let flow = evaluate_selection(
            &g,
            VertexId(0),
            &[EdgeId(4)],
            EstimatorConfig::exact(),
            false,
            0,
        );
        assert_eq!(flow, 0.0);
        // Out-of-order insertion still works: 3-4 first, then the path.
        let flow = evaluate_selection(
            &g,
            VertexId(0),
            &[EdgeId(4), EdgeId(2), EdgeId(0)],
            EstimatorConfig::exact(),
            false,
            0,
        );
        assert!((flow - (0.9 * 5.0 + 0.63 * 8.0 + 0.315 * 1.0)).abs() < 1e-9);
    }

    #[test]
    fn both_ci_engines_run_and_stay_deterministic() {
        let g = graph();
        for engine in [CiEngine::BatchedRace, CiEngine::ScalarReference] {
            let mut cfg = SolverConfig::paper(Algorithm::FtMCiDs, 3, 11);
            cfg.ci_engine = engine;
            let a = solve(&g, VertexId(0), &cfg);
            let b = solve(&g, VertexId(0), &cfg);
            assert_eq!(a.selected, b.selected, "{engine:?} not deterministic");
            assert!(a.flow > 0.0);
        }
    }

    #[test]
    fn algorithm_names_roundtrip() {
        for alg in Algorithm::all() {
            assert_eq!(Algorithm::parse(alg.name()), Some(alg));
        }
        assert_eq!(Algorithm::parse("nonsense"), None);
    }

    #[test]
    fn elapsed_and_metrics_populated() {
        let g = graph();
        let r = solve(&g, VertexId(0), &SolverConfig::paper(Algorithm::Ft, 3, 1));
        assert!(r.metrics.probes > 0);
        assert!(r.elapsed.as_nanos() > 0);
    }
}
