//! The serving layer behind the `flowmax-serve` daemon: resident graphs,
//! admission control, query coalescing, and streamed anytime results —
//! all testable in-process, no sockets involved.
//!
//! A [`FlowServer`] answers the paper's workload shape — many
//! flow-maximization queries against a few hot graphs — from one process
//! that outlives every query:
//!
//! * **Graph residency.** [`FlowServer::load_graph`] keys each graph by its
//!   content [`fingerprint`](flowmax_graph::ProbabilisticGraph::fingerprint)
//!   and keeps the most recently used `max_resident_graphs` resident, each
//!   with its warm per-graph [`SessionState`] (the bounded spanning-tree
//!   cache). Reloading a resident graph is a cache hit, not a rebuild.
//! * **Admission control.** [`FlowServer::submit`] enqueues into a bounded
//!   queue. A full queue rejects immediately with
//!   [`ServeError::Overloaded`] and a retry-after hint — backpressure, not
//!   unbounded buffering.
//! * **Coalescing.** The dispatcher drains up to `coalesce_max` queued
//!   queries against the same graph into one
//!   [`Session::run_many_with`] batch, so concurrent clients share one
//!   session and the worker pool sees one large job instead of many small
//!   ones. Batching never changes results: a batched query is bit-identical
//!   to a solo run of the same spec.
//! * **Streaming.** Each submission returns a [`Ticket`] that yields
//!   [`ServeEvent::Step`] per committed edge while the query runs (the
//!   greedy selection is anytime, so every prefix is a valid answer), then
//!   [`ServeEvent::Done`] or [`ServeEvent::Failed`].
//! * **Deadlines & cancellation.** A query may carry a wall-clock budget
//!   ([`QueryParams::deadline_ms`], measured from admission) and every
//!   submission can return a [`CancelToken`]
//!   ([`FlowServer::submit_cancellable`]). Both stop the greedy run
//!   *between* iterations; the ticket then ends with
//!   [`ServeEvent::Degraded`] whose committed prefix is bit-identical to
//!   the same-seed full run's prefix — graceful degradation, not a
//!   corrupted answer.
//! * **Deterministic replay.** The serving contract: a query is a pure
//!   function of `(graph fingerprint, QueryParams, seed)`. Replaying the
//!   same submission — any time, any queue state, any coalescing, any
//!   thread count — returns a bit-identical selection and flow. A worker
//!   panicking mid-query fails that query with
//!   [`CoreError::WorkerPanicked`]; the pool and the server stay up.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use flowmax_graph::{EdgeId, ProbabilisticGraph, VertexId};

use crate::cancel::{CancelToken, Deadline, RunControl};
use crate::clock::SoftDeadline;
use crate::error::{panic_message, CoreError};
use crate::selection::observer::SelectionStep;
use crate::session::{Session, SessionState};
use crate::solver::Algorithm;

/// Configuration of a [`FlowServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Sampling worker threads per executing batch (0 is clamped to 1
    /// with the process-wide warning, like everywhere else).
    pub threads: usize,
    /// Sampling lane width, in 64-world lane words per BFS block
    /// (supported widths 1, 4, 8; others clamped to 1 with the
    /// process-wide warning). Results never depend on this.
    pub lane_words: usize,
    /// Graphs kept resident (LRU beyond this; at least 1).
    pub max_resident_graphs: usize,
    /// Bounded admission queue capacity (at least 1). A submit against a
    /// full queue is rejected with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum queries coalesced into one batch (at least 1).
    pub coalesce_max: usize,
    /// Base retry hint handed back with [`ServeError::Overloaded`]. The
    /// live hint scales with queue depth (see
    /// [`FlowServer::retry_after_hint`]): at the lightest overload it is
    /// exactly this value, and it grows with the number of batches the
    /// backlog needs, capped at 32× the base.
    pub retry_after: Duration,
    /// Server-default master seed for queries that don't pin one.
    pub seed: u64,
    /// Start with the dispatcher paused (queries queue but don't run until
    /// [`FlowServer::resume`]) — for tests and drain-then-start rollouts.
    pub start_paused: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: flowmax_sampling::default_threads(),
            lane_words: flowmax_sampling::default_lane_words(),
            max_resident_graphs: 4,
            queue_capacity: 64,
            coalesce_max: 16,
            retry_after: Duration::from_millis(50),
            seed: 42,
            start_paused: false,
        }
    }
}

/// One query as a client states it: everything needed to replay the result
/// bit for bit, independent of server load, queue state, or coalescing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryParams {
    /// The query vertex `Q`.
    pub vertex: VertexId,
    /// The selection algorithm (default: the paper's `FT+M+CI+DS`).
    pub algorithm: Algorithm,
    /// The edge budget `k` (must be ≥ 1).
    pub budget: usize,
    /// Monte-Carlo samples per component estimation (must be ≥ 1).
    pub samples: u32,
    /// Master seed override; `None` uses the server's configured seed.
    pub seed: Option<u64>,
    /// Wall-clock budget in milliseconds, measured from admission. An
    /// expired deadline stops the greedy run between iterations and the
    /// ticket ends with [`ServeEvent::Degraded`] instead of `Done` — the
    /// degraded selection is bit-identical to the same-seed full run's
    /// prefix (the anytime property). `None` means no deadline. The
    /// deadline never affects *what* any committed step computes, so it is
    /// outside the replay key: `(fingerprint, params minus deadline,
    /// seed)` still determines every committed step bit for bit.
    pub deadline_ms: Option<u64>,
}

impl QueryParams {
    /// Params at the paper's defaults for `vertex` and `budget`.
    pub fn new(vertex: VertexId, budget: usize) -> Self {
        QueryParams {
            vertex,
            algorithm: Algorithm::FtMCiDs,
            budget,
            samples: 1000,
            seed: None,
            deadline_ms: None,
        }
    }

    /// Sets a wall-clock deadline in milliseconds (from admission).
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }
}

/// Submission-time errors (execution-time failures arrive as
/// [`ServeEvent::Failed`] on the ticket instead).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue is full; retry after the hinted backoff.
    Overloaded {
        /// Suggested client backoff before resubmitting.
        retry_after: Duration,
    },
    /// No resident graph has this fingerprint (never loaded, or evicted).
    UnknownGraph(u64),
    /// The query is invalid against the target graph (bad vertex, zero
    /// budget or samples, …) — rejected before queueing.
    Invalid(CoreError),
    /// The server is shutting down and no longer admits queries.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { retry_after } => write!(
                f,
                "admission queue full; retry after {} ms",
                retry_after.as_millis()
            ),
            ServeError::UnknownGraph(fp) => {
                write!(f, "no resident graph with fingerprint {fp:016x}")
            }
            ServeError::Invalid(e) => write!(f, "invalid query: {e}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A streamed serving event, in arrival order on a [`Ticket`]: zero or
/// more `Step`s (one per committed edge, an anytime partial answer), then
/// exactly one `Done` or `Failed`.
#[derive(Debug, Clone)]
pub enum ServeEvent {
    /// One committed edge of the running selection.
    Step(SelectionStep),
    /// The query finished; the full result.
    Done(ServeResult),
    /// The query was stopped early — its deadline expired or its
    /// [`CancelToken`] fired — and this is the graceful degradation: the
    /// `steps_done` committed edges are **bit-identical to the first
    /// `steps_done` edges of the same-seed full run** (the greedy
    /// selection's anytime property), so the partial result is a correct
    /// budget-`steps_done` answer, not a corrupted budget-`budget` one.
    Degraded {
        /// Edges committed before the stop (= `result.selected.len()`).
        steps_done: usize,
        /// The edge budget the query asked for.
        budget: usize,
        /// The degraded (prefix) result, evaluated like any full result.
        result: ServeResult,
    },
    /// The query failed. The server and its worker pool remain up.
    Failed(CoreError),
}

/// The owned result of one served query (no borrow of the graph, so it
/// outlives residency and can cross the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// Fingerprint of the graph the query ran against.
    pub fingerprint: u64,
    /// The query parameters as executed (seed resolved).
    pub params: QueryParams,
    /// Selected edges in commit order.
    pub selected: Vec<EdgeId>,
    /// One step per committed edge, in commit order.
    pub steps: Vec<SelectionStep>,
    /// Flow of the full selection under the shared evaluator.
    pub flow: f64,
    /// Flow as estimated by the algorithm during selection.
    pub algorithm_flow: f64,
}

/// The client half of one submission: an iterator of [`ServeEvent`]s.
#[derive(Debug)]
pub struct Ticket {
    events: Receiver<ServeEvent>,
}

impl Ticket {
    /// The next event, blocking; `None` once the stream is finished (after
    /// `Done`/`Failed`, or if the server was dropped mid-query).
    pub fn next_event(&self) -> Option<ServeEvent> {
        self.events.recv().ok()
    }

    /// Drains the stream to completion and returns the final result,
    /// discarding intermediate steps (they are also in
    /// [`ServeResult::steps`]). A [`ServeEvent::Degraded`] stream returns
    /// its prefix result `Ok` too — a degraded answer is a valid
    /// smaller-budget answer; consume events one by one with
    /// [`next_event`](Ticket::next_event) to distinguish the two.
    pub fn wait(self) -> Result<ServeResult, CoreError> {
        loop {
            match self.next_event() {
                Some(ServeEvent::Step(_)) => continue,
                Some(ServeEvent::Done(result)) => return Ok(result),
                Some(ServeEvent::Degraded { result, .. }) => return Ok(result),
                Some(ServeEvent::Failed(err)) => return Err(err),
                None => {
                    return Err(CoreError::WorkerPanicked(
                        "server dropped before the query finished".into(),
                    ))
                }
            }
        }
    }
}

/// A resident graph: the graph plus its long-lived per-graph session state
/// (warm spanning-tree cache shared by every query against it).
#[derive(Debug)]
struct ResidentGraph {
    fingerprint: u64,
    graph: ProbabilisticGraph,
    state: Arc<SessionState>,
}

/// One admitted, not-yet-executed query, with the control (cancellation
/// token, deadline clock already running since admission) that can stop it.
struct Pending {
    graph: Arc<ResidentGraph>,
    params: QueryParams,
    control: RunControl,
    tx: Sender<ServeEvent>,
}

/// Queue + lifecycle flags, guarded by one mutex with a condvar.
struct QueueState {
    pending: VecDeque<Pending>,
    paused: bool,
    shutdown: bool,
}

/// Counters for `STATS` endpoints and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Graphs currently resident.
    pub resident_graphs: usize,
    /// Queries currently queued (admitted, not yet dispatched).
    pub queued: usize,
    /// Queries completed (successfully or failed) since start.
    pub completed: u64,
    /// Submissions rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Batches dispatched (each covering ≥ 1 coalesced queries).
    pub batches: u64,
}

struct Inner {
    config: ServeConfig,
    /// Most-recently-used resident graph at the back.
    graphs: Mutex<VecDeque<Arc<ResidentGraph>>>,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    completed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    /// Monotone admission-attempt sequence; keys the `serve/admit` fault
    /// site so injected admission failures are deterministic per plan.
    admissions: AtomicU64,
}

impl Inner {
    /// All serve locks recover from poisoning: the protected structures
    /// are only ever mutated through completed push/pop/remove operations,
    /// so they are valid after any panic and one dead query must not take
    /// the daemon down.
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_graphs(&self) -> std::sync::MutexGuard<'_, VecDeque<Arc<ResidentGraph>>> {
        self.graphs.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The in-process serving engine. See the [module docs](self) for the
/// contract; `src/bin/serve.rs` wraps this in a line-protocol TCP daemon.
pub struct FlowServer {
    inner: Arc<Inner>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for FlowServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowServer")
            .field("config", &self.inner.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FlowServer {
    /// Starts a server (and its dispatcher thread) with `config`.
    pub fn new(mut config: ServeConfig) -> Self {
        config.threads = flowmax_sampling::clamp_threads(config.threads, "FlowServer");
        config.lane_words = flowmax_sampling::clamp_lane_words(config.lane_words, "FlowServer");
        config.max_resident_graphs = config.max_resident_graphs.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        config.coalesce_max = config.coalesce_max.max(1);
        let inner = Arc::new(Inner {
            config,
            graphs: Mutex::new(VecDeque::new()),
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                paused: config.start_paused,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            // flowmax-lint: allow(L2, the dispatcher is the serialization point of the admission queue — one long-lived control thread whose batch order is defined by arrival order, while all sampling parallelism stays on the audited WorkerPool; replies replay deterministically by the serving contract)
            std::thread::Builder::new()
                .name("flowmax-serve-dispatch".into())
                .spawn(move || dispatch_loop(&inner))
                // flowmax-lint: allow(L7, startup-fatal by design: a server that cannot spawn its dispatcher must not come up half-alive, and no request exists yet to degrade for)
                .expect("spawning the dispatcher thread")
        };
        FlowServer {
            inner,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// Gracefully shuts the server down: stops admitting new queries
    /// (submits now fail with [`ServeError::ShuttingDown`]), lets the
    /// dispatcher finish the batch it is currently executing, fails every
    /// admitted-but-unstarted query with a terminal
    /// [`ServeEvent::Failed`]\([`CoreError::ShuttingDown`]\) — no ticket
    /// ends as a silent stream end — and joins the dispatcher thread.
    /// Idempotent: repeated calls, concurrent calls, and the eventual drop
    /// are no-ops after the first.
    pub fn shutdown(&self) {
        let drained: Vec<Pending> = {
            let mut queue = self.inner.lock_queue();
            queue.shutdown = true;
            queue.pending.drain(..).collect()
        };
        self.inner.work_ready.notify_all();
        for pending in drained {
            let _ = pending.tx.send(ServeEvent::Failed(CoreError::ShuttingDown));
        }
        let handle = self
            .dispatcher
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// The server's (normalized) configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// Makes `graph` resident and returns its fingerprint — the handle
    /// clients submit queries against. Loading an already-resident graph
    /// just refreshes its LRU position (the warm session state survives);
    /// loading beyond `max_resident_graphs` evicts the least recently used
    /// graph. Queries already queued against an evicted graph still run —
    /// they hold their own reference.
    pub fn load_graph(&self, graph: ProbabilisticGraph) -> u64 {
        let fingerprint = graph.fingerprint();
        let mut graphs = self.inner.lock_graphs();
        if let Some(pos) = graphs.iter().position(|g| g.fingerprint == fingerprint) {
            if let Some(hit) = graphs.remove(pos) {
                graphs.push_back(hit);
            }
        } else {
            if graphs.len() == self.inner.config.max_resident_graphs {
                graphs.pop_front();
            }
            graphs.push_back(Arc::new(ResidentGraph {
                fingerprint,
                graph,
                state: Arc::new(SessionState::new()),
            }));
        }
        fingerprint
    }

    /// The resident graph for a fingerprint, refreshing its LRU position.
    fn resident(&self, fingerprint: u64) -> Option<Arc<ResidentGraph>> {
        let mut graphs = self.inner.lock_graphs();
        let pos = graphs.iter().position(|g| g.fingerprint == fingerprint)?;
        let hit = graphs.remove(pos)?;
        graphs.push_back(Arc::clone(&hit));
        Some(hit)
    }

    /// Admits one query against the resident graph `fingerprint` and
    /// returns its streaming [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownGraph`] for a non-resident fingerprint,
    /// [`ServeError::Invalid`] for params the target graph rejects, and
    /// [`ServeError::Overloaded`] (with a retry hint) when the bounded
    /// queue is full — the backpressure contract: the server never buffers
    /// unboundedly and never blocks the submitting client.
    pub fn submit(&self, fingerprint: u64, params: QueryParams) -> Result<Ticket, ServeError> {
        self.submit_cancellable(fingerprint, params)
            .map(|(ticket, _)| ticket)
    }

    /// [`submit`](FlowServer::submit) returning the query's [`CancelToken`]
    /// alongside its ticket. Cancelling (from any thread, at any time)
    /// stops the query at its next iteration boundary; the ticket then
    /// ends with [`ServeEvent::Degraded`] carrying the committed prefix —
    /// bit-identical to the same-seed full run's prefix.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](FlowServer::submit).
    pub fn submit_cancellable(
        &self,
        fingerprint: u64,
        params: QueryParams,
    ) -> Result<(Ticket, CancelToken), ServeError> {
        let admission = self.inner.admissions.fetch_add(1, Ordering::Relaxed);
        let graph = self
            .resident(fingerprint)
            .ok_or(ServeError::UnknownGraph(fingerprint))?;
        if params.budget == 0 {
            return Err(ServeError::Invalid(CoreError::EmptyBudget));
        }
        if params.samples == 0 {
            return Err(ServeError::Invalid(CoreError::ZeroSamples));
        }
        if params.vertex.index() >= graph.graph.vertex_count() {
            return Err(ServeError::Invalid(CoreError::QueryOutOfBounds {
                query: params.vertex,
                vertex_count: graph.graph.vertex_count(),
            }));
        }
        let cancel = CancelToken::new();
        let mut deadline = Deadline::none();
        if let Some(ms) = params.deadline_ms {
            // The clock starts at admission: queue wait counts against the
            // budget, as a serving deadline must.
            deadline = deadline.with_wall_clock(SoftDeadline::after(Duration::from_millis(ms)));
        }
        let control = RunControl::unlimited()
            .with_cancel(cancel.clone())
            .with_deadline(deadline);
        let (tx, rx) = channel();
        {
            let mut queue = self.inner.lock_queue();
            if queue.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let overloaded = queue.pending.len() >= self.inner.config.queue_capacity
                || flowmax_faults::should_fail_keyed("serve/admit", admission);
            if overloaded {
                let queued = queue.pending.len();
                drop(queue);
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    retry_after: self.retry_after_hint(queued),
                });
            }
            queue.pending.push_back(Pending {
                graph,
                params,
                control,
                tx,
            });
        }
        self.inner.work_ready.notify_one();
        Ok((Ticket { events: rx }, cancel))
    }

    /// The live retry-after hint for a queue currently `queued` deep: the
    /// configured base scaled by how many coalesced batches the backlog
    /// needs (`ceil((queued + 1) / coalesce_max)`), capped at 32× the
    /// base. Deterministic — a pure function of the queue depth and the
    /// configuration, no clocks or rates involved — so the wire format is
    /// regression-testable.
    pub fn retry_after_hint(&self, queued: usize) -> Duration {
        let coalesce = self.inner.config.coalesce_max;
        let batches_needed = (queued / coalesce + 1).min(32) as u32;
        self.inner.config.retry_after * batches_needed
    }

    /// Resumes a paused dispatcher (see [`ServeConfig::start_paused`]).
    pub fn resume(&self) {
        self.inner.lock_queue().paused = false;
        self.inner.work_ready.notify_all();
    }

    /// Pauses the dispatcher: queries keep queueing (and the queue keeps
    /// rejecting past capacity) but none start executing.
    pub fn pause(&self) {
        self.inner.lock_queue().paused = true;
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            resident_graphs: self.inner.lock_graphs().len(),
            queued: self.inner.lock_queue().pending.len(),
            completed: self.inner.completed.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
        }
    }
}

impl Drop for FlowServer {
    /// Dropping the server is a [graceful shutdown](FlowServer::shutdown):
    /// the executing batch finishes, every admitted-but-unstarted query
    /// fails with a terminal [`CoreError::ShuttingDown`] event, and the
    /// dispatcher thread is joined.
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher: waits for admitted work, coalesces queued queries
/// against the same graph into one batch, and executes it on a session
/// over that graph's resident state.
fn dispatch_loop(inner: &Inner) {
    loop {
        let batch = {
            let mut queue = inner.lock_queue();
            loop {
                if queue.shutdown {
                    return;
                }
                if !queue.paused && !queue.pending.is_empty() {
                    break;
                }
                queue = inner
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let Some(first) = queue.pending.pop_front() else {
                continue; // unreachable: the wait loop saw a non-empty queue
            };
            let mut batch = vec![first];
            // Coalesce: pull every queued query against the same graph (in
            // admission order) into this batch, up to the configured cap.
            let mut i = 0;
            while i < queue.pending.len() && batch.len() < inner.config.coalesce_max {
                if queue.pending[i].graph.fingerprint == batch[0].graph.fingerprint {
                    match queue.pending.remove(i) {
                        Some(same) => batch.push(same),
                        None => i += 1, // unreachable: i < len
                    }
                } else {
                    i += 1;
                }
            }
            batch
        };
        execute_batch(inner, &batch);
    }
}

/// Runs one coalesced batch and streams every event to its tickets.
/// Panics anywhere in execution are contained here: the affected batch
/// fails with [`CoreError::WorkerPanicked`], the dispatcher and the worker
/// pool live on.
fn execute_batch(inner: &Inner, batch: &[Pending]) {
    let resident = &batch[0].graph;
    let session = Session::new(&resident.graph)
        .with_threads(inner.config.threads)
        .with_lane_words(inner.config.lane_words)
        .with_seed(inner.config.seed)
        .with_state(Arc::clone(&resident.state));
    // The vertex was validated at submit, but a request path never panics
    // on a should-be-impossible state: a failure here fails this batch
    // with terminal events and the dispatcher lives on.
    let specs: Result<Vec<_>, CoreError> = batch
        .iter()
        .map(|p| {
            let seed = p.params.seed.unwrap_or(inner.config.seed);
            session.query(p.params.vertex).map(|builder| {
                builder
                    .algorithm(p.params.algorithm)
                    .budget(p.params.budget)
                    .samples(p.params.samples)
                    .seed(seed)
                    .spec()
            })
        })
        .collect();
    let specs = match specs {
        Ok(specs) => specs,
        Err(err) => {
            inner.batches.fetch_add(1, Ordering::Relaxed);
            inner
                .completed
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            for pending in batch {
                let _ = pending.tx.send(ServeEvent::Failed(err.clone()));
            }
            return;
        }
    };
    let controls: Vec<RunControl> = batch.iter().map(|p| p.control.clone()).collect();
    let batch_seq = inner.batches.load(Ordering::Relaxed);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        flowmax_faults::failpoint_keyed("serve/batch", batch_seq);
        session.run_many_controlled(&specs, &controls, &|i, step| {
            // A disconnected client (dropped Ticket) is not an error; the
            // query still runs for the batch's other members.
            let _ = batch[i].tx.send(ServeEvent::Step(*step));
        })
    }));
    // Count the batch and its completions *before* the terminal events go
    // out, so a client that has just received its `Done` observes both in
    // the stats.
    inner.batches.fetch_add(1, Ordering::Relaxed);
    inner
        .completed
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    match outcome {
        Ok(Ok(runs)) => {
            for (pending, run) in batch.iter().zip(runs) {
                let mut params = pending.params;
                params.seed = Some(params.seed.unwrap_or(inner.config.seed));
                let result = ServeResult {
                    fingerprint: pending.graph.fingerprint,
                    params,
                    selected: run.selected.clone(),
                    steps: run.steps.clone(),
                    flow: run.flow,
                    algorithm_flow: run.algorithm_flow,
                };
                let event = if run.stopped.is_some() {
                    ServeEvent::Degraded {
                        steps_done: result.selected.len(),
                        budget: pending.params.budget,
                        result,
                    }
                } else {
                    ServeEvent::Done(result)
                };
                let _ = pending.tx.send(event);
            }
        }
        Ok(Err(err)) => {
            for pending in batch {
                let _ = pending.tx.send(ServeEvent::Failed(err.clone()));
            }
        }
        Err(payload) => {
            let err = CoreError::WorkerPanicked(panic_message(payload.as_ref()));
            for pending in batch {
                let _ = pending.tx.send(ServeEvent::Failed(err.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn graph(scale: f64) -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertex(Weight::ZERO);
        for w in [5.0, 3.0, 8.0, 1.0] {
            b.add_vertex(Weight::new(w * scale).unwrap());
        }
        b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p(0.8)).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p(0.7)).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p(0.6)).unwrap();
        b.add_edge(VertexId(3), VertexId(4), p(0.5)).unwrap();
        b.build()
    }

    fn quick_params(vertex: u32, budget: usize) -> QueryParams {
        let mut params = QueryParams::new(VertexId(vertex), budget);
        params.samples = 200;
        params
    }

    #[test]
    fn served_queries_match_direct_sessions_bit_for_bit() {
        let g = graph(1.0);
        let server = FlowServer::new(ServeConfig::default());
        let fp = server.load_graph(g.clone());
        let ticket = server.submit(fp, quick_params(0, 3)).unwrap();
        let result = ticket.wait().unwrap();

        let session = Session::new(&g).with_seed(42);
        let direct = session
            .query(VertexId(0))
            .unwrap()
            .budget(3)
            .samples(200)
            .run()
            .unwrap();
        assert_eq!(result.selected, direct.selected);
        assert_eq!(result.flow, direct.flow);
        assert_eq!(result.algorithm_flow, direct.algorithm_flow);
        assert_eq!(result.steps.len(), direct.steps.len());
    }

    #[test]
    fn replaying_a_submission_is_bit_identical() {
        let server = FlowServer::new(ServeConfig::default());
        let fp = server.load_graph(graph(1.0));
        let a = server
            .submit(fp, quick_params(2, 3))
            .unwrap()
            .wait()
            .unwrap();
        // Interleave unrelated load before the replay.
        for _ in 0..5 {
            server
                .submit(fp, quick_params(1, 2))
                .unwrap()
                .wait()
                .unwrap();
        }
        let b = server
            .submit(fp, quick_params(2, 3))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.flow, b.flow);
        assert_eq!(a.steps.len(), b.steps.len());
    }

    #[test]
    fn tickets_stream_steps_then_done() {
        let server = FlowServer::new(ServeConfig::default());
        let fp = server.load_graph(graph(1.0));
        let ticket = server.submit(fp, quick_params(0, 3)).unwrap();
        let mut steps = Vec::new();
        let result = loop {
            match ticket.next_event().expect("stream ends with Done") {
                ServeEvent::Step(s) => steps.push(s),
                ServeEvent::Done(r) => break r,
                ServeEvent::Degraded { .. } => panic!("no deadline was set"),
                ServeEvent::Failed(e) => panic!("query failed: {e}"),
            }
        };
        assert_eq!(steps.len(), result.steps.len());
        for (streamed, kept) in steps.iter().zip(&result.steps) {
            assert_eq!(streamed.edge, kept.edge);
            assert_eq!(streamed.iteration, kept.iteration);
        }
        assert!(ticket.next_event().is_none(), "stream is finished");
    }

    #[test]
    fn bounded_queue_rejects_with_retry_after() {
        let server = FlowServer::new(ServeConfig {
            queue_capacity: 2,
            start_paused: true,
            retry_after: Duration::from_millis(7),
            ..ServeConfig::default()
        });
        let fp = server.load_graph(graph(1.0));
        let t1 = server.submit(fp, quick_params(0, 1)).unwrap();
        let t2 = server.submit(fp, quick_params(1, 1)).unwrap();
        let rejected = server.submit(fp, quick_params(2, 1));
        assert_eq!(
            rejected.unwrap_err(),
            ServeError::Overloaded {
                retry_after: Duration::from_millis(7)
            }
        );
        assert_eq!(server.stats().rejected, 1);
        assert_eq!(server.stats().queued, 2);
        // Draining the queue reopens admission.
        server.resume();
        t1.wait().unwrap();
        t2.wait().unwrap();
        server
            .submit(fp, quick_params(2, 1))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(server.stats().completed, 3);
    }

    #[test]
    fn queued_queries_against_one_graph_coalesce_into_batches() {
        let server = FlowServer::new(ServeConfig {
            start_paused: true,
            threads: 2,
            ..ServeConfig::default()
        });
        let fp_a = server.load_graph(graph(1.0));
        let fp_b = server.load_graph(graph(2.0));
        let tickets: Vec<_> = (0..4)
            .map(|i| server.submit(fp_a, quick_params(i % 3, 2)).unwrap())
            .collect();
        let other = server.submit(fp_b, quick_params(0, 2)).unwrap();
        server.resume();
        let resident = server_graph(&server, fp_a).unwrap();
        let solo = Session::new(&resident.graph).with_seed(42);
        for (i, t) in tickets.into_iter().enumerate() {
            let got = t.wait().unwrap();
            let want = solo
                .query(VertexId((i % 3) as u32))
                .unwrap()
                .budget(2)
                .samples(200)
                .run()
                .unwrap();
            assert_eq!(got.selected, want.selected, "query {i}");
            assert_eq!(got.flow, want.flow, "query {i}");
        }
        other.wait().unwrap();
        let stats = server.stats();
        assert_eq!(stats.completed, 5);
        assert!(
            stats.batches < 5,
            "same-graph queries must coalesce (got {} batches for 5 queries)",
            stats.batches
        );
    }

    /// Test helper: peeks a resident graph without going through submit.
    fn server_graph(server: &FlowServer, fp: u64) -> Option<Arc<ResidentGraph>> {
        server.resident(fp)
    }

    #[test]
    fn resident_graphs_are_lru_bounded() {
        let server = FlowServer::new(ServeConfig {
            max_resident_graphs: 2,
            ..ServeConfig::default()
        });
        let fp1 = server.load_graph(graph(1.0));
        let fp2 = server.load_graph(graph(2.0));
        assert_eq!(server.stats().resident_graphs, 2);
        // Touch fp1 so fp2 is the eviction victim.
        server.load_graph(graph(1.0));
        let fp3 = server.load_graph(graph(3.0));
        assert_eq!(server.stats().resident_graphs, 2);
        assert!(matches!(
            server.submit(fp2, quick_params(0, 1)),
            Err(ServeError::UnknownGraph(_))
        ));
        server
            .submit(fp1, quick_params(0, 1))
            .unwrap()
            .wait()
            .unwrap();
        server
            .submit(fp3, quick_params(0, 1))
            .unwrap()
            .wait()
            .unwrap();
    }

    #[test]
    fn invalid_submissions_are_rejected_before_queueing() {
        let server = FlowServer::new(ServeConfig::default());
        let fp = server.load_graph(graph(1.0));
        assert!(matches!(
            server.submit(fp, quick_params(0, 0)),
            Err(ServeError::Invalid(CoreError::EmptyBudget))
        ));
        let mut no_samples = quick_params(0, 1);
        no_samples.samples = 0;
        assert!(matches!(
            server.submit(fp, no_samples),
            Err(ServeError::Invalid(CoreError::ZeroSamples))
        ));
        assert!(matches!(
            server.submit(fp, quick_params(99, 1)),
            Err(ServeError::Invalid(CoreError::QueryOutOfBounds { .. }))
        ));
        assert!(matches!(
            server.submit(0xDEAD_BEEF, quick_params(0, 1)),
            Err(ServeError::UnknownGraph(0xDEAD_BEEF))
        ));
        assert_eq!(server.stats().queued, 0);
    }

    #[test]
    fn expired_deadline_degrades_to_a_bit_identical_prefix() {
        let g = graph(1.0);
        let server = FlowServer::new(ServeConfig::default());
        let fp = server.load_graph(g.clone());
        // A zero deadline is already expired at dispatch: the run stops
        // before any iteration and degrades to the empty prefix.
        let ticket = server
            .submit(fp, quick_params(0, 3).with_deadline_ms(0))
            .unwrap();
        let event = loop {
            match ticket.next_event().expect("stream ends with a terminal") {
                ServeEvent::Step(_) => continue,
                terminal => break terminal,
            }
        };
        let ServeEvent::Degraded {
            steps_done,
            budget,
            result,
        } = event
        else {
            panic!("expected Degraded, got {event:?}");
        };
        assert_eq!(budget, 3);
        assert_eq!(steps_done, result.selected.len());

        // The degraded selection is the same-seed full run's prefix.
        let full = server
            .submit(fp, quick_params(0, 3))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(result.selected, full.selected[..steps_done]);
    }

    #[test]
    fn cancelled_query_degrades_instead_of_failing() {
        let server = FlowServer::new(ServeConfig {
            start_paused: true,
            ..ServeConfig::default()
        });
        let fp = server.load_graph(graph(1.0));
        let (ticket, cancel) = server.submit_cancellable(fp, quick_params(0, 3)).unwrap();
        // Cancel while the query is still queued: it stops at iteration 0.
        cancel.cancel();
        server.resume();
        let event = loop {
            match ticket.next_event().expect("stream ends with a terminal") {
                ServeEvent::Step(_) => continue,
                terminal => break terminal,
            }
        };
        match event {
            ServeEvent::Degraded {
                steps_done, budget, ..
            } => {
                assert_eq!(steps_done, 0);
                assert_eq!(budget, 3);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(server.stats().completed, 1);
    }

    #[test]
    fn retry_after_scales_with_queue_depth_and_clamps() {
        let server = FlowServer::new(ServeConfig {
            retry_after: Duration::from_millis(10),
            coalesce_max: 4,
            ..ServeConfig::default()
        });
        // One batch drains up to 4 queries: depths 0..=3 keep the base.
        assert_eq!(server.retry_after_hint(0), Duration::from_millis(10));
        assert_eq!(server.retry_after_hint(3), Duration::from_millis(10));
        // Deeper backlogs need more batches.
        assert_eq!(server.retry_after_hint(4), Duration::from_millis(20));
        assert_eq!(server.retry_after_hint(9), Duration::from_millis(30));
        // Clamped at 32× base no matter the depth.
        assert_eq!(server.retry_after_hint(100_000), Duration::from_millis(320));
    }

    #[test]
    fn dropping_the_server_finishes_cleanly() {
        let server = FlowServer::new(ServeConfig {
            start_paused: true,
            ..ServeConfig::default()
        });
        let fp = server.load_graph(graph(1.0));
        let ticket = server.submit(fp, quick_params(0, 2)).unwrap();
        drop(server); // paused: the query never ran
        assert!(matches!(ticket.wait(), Err(CoreError::ShuttingDown)));
    }

    #[test]
    fn shutdown_fails_pending_queries_with_a_terminal_event() {
        let server = FlowServer::new(ServeConfig {
            start_paused: true,
            ..ServeConfig::default()
        });
        let fp = server.load_graph(graph(1.0));
        let t1 = server.submit(fp, quick_params(0, 2)).unwrap();
        let t2 = server.submit(fp, quick_params(1, 2)).unwrap();
        server.shutdown();
        for ticket in [t1, t2] {
            assert!(matches!(
                ticket.next_event(),
                Some(ServeEvent::Failed(CoreError::ShuttingDown))
            ));
            assert!(ticket.next_event().is_none(), "Failed is terminal");
        }
        // Shutdown is idempotent and new submissions are refused.
        server.shutdown();
        assert!(matches!(
            server.submit(fp, quick_params(0, 1)),
            Err(ServeError::ShuttingDown)
        ));
    }
}
