//! Cooperative cancellation and deadlines for anytime runs.
//!
//! The greedy selection (§6.1) is an *anytime* algorithm: every budget-`j`
//! prefix of its selection is itself a valid budget-`j` solution. This
//! module gives callers principled ways to stop a run between iterations —
//! a flipped [`CancelToken`], an exhausted step budget, or an expired
//! wall-clock [`SoftDeadline`] — with the
//! serving contract intact: a stopped run's selection is **bit-identical
//! to the same-seed full run's prefix** of the same length, because the
//! stop check sits strictly between iterations and never changes what any
//! iteration computes.
//!
//! Library code uses step budgets ([`Deadline::steps`]) — no clock
//! involved, fully deterministic. Wall-clock deadlines
//! ([`Deadline::with_wall_clock`]) are sanctioned at the daemon boundary
//! only, where `deadline_ms=` requests arrive; they decide *how many*
//! steps commit, never what a step computes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::clock::SoftDeadline;

/// Why a controlled run stopped before exhausting its edge budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
    /// The [`Deadline`]'s step budget was exhausted.
    StepBudget,
    /// The [`Deadline`]'s wall-clock component expired.
    DeadlineExpired,
}

impl std::fmt::Display for StopCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopCause::Cancelled => write!(f, "cancelled"),
            StopCause::StepBudget => write!(f, "step budget exhausted"),
            StopCause::DeadlineExpired => write!(f, "deadline expired"),
        }
    }
}

/// A shared flag that requests a run stop at its next iteration boundary.
///
/// Clones share the flag; any clone can cancel, from any thread. Checking
/// is a single relaxed-ordering atomic load — cheap enough for the greedy
/// loop to consult every iteration.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once any clone has cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A per-run stopping rule: an optional step budget (deterministic,
/// library-grade) and an optional wall-clock line (daemon boundary only).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Deadline {
    max_steps: Option<usize>,
    wall: Option<SoftDeadline>,
}

impl Deadline {
    /// No deadline: the run uses its full edge budget.
    pub fn none() -> Self {
        Deadline::default()
    }

    /// Stop after at most `max_steps` committed steps. Deterministic: the
    /// stopped selection is exactly `selection_at(max_steps)` of the full
    /// run.
    pub fn steps(max_steps: usize) -> Self {
        Deadline {
            max_steps: Some(max_steps),
            wall: None,
        }
    }

    /// Adds a wall-clock stop line (sanctioned at the daemon boundary;
    /// see [`crate::clock::SoftDeadline`]). The clock decides only how
    /// many steps commit — the committed prefix stays bit-identical to
    /// the same-seed full run.
    pub fn with_wall_clock(mut self, wall: SoftDeadline) -> Self {
        self.wall = Some(wall);
        self
    }

    /// The step budget, if any.
    pub fn max_steps(&self) -> Option<usize> {
        self.max_steps
    }

    /// True when this deadline can never stop a run.
    pub fn is_none(&self) -> bool {
        self.max_steps.is_none() && self.wall.is_none()
    }
}

/// Everything that can stop a controlled run, checked between iterations.
///
/// The default control never stops a run, so uncontrolled entry points
/// delegate to controlled ones at zero behavioral cost.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    cancel: Option<CancelToken>,
    deadline: Deadline,
}

impl RunControl {
    /// A control that never stops the run.
    pub fn unlimited() -> Self {
        RunControl::default()
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// True when this control can never stop a run (the fast path: the
    /// greedy loop skips per-iteration checks entirely).
    pub fn is_unlimited(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none()
    }

    /// The stop decision taken *before* iteration `next_step` (0-based;
    /// equal to the number of steps already committed). Checks are ordered
    /// deterministic-first: cancellation, then the step budget, then the
    /// wall clock.
    pub fn should_stop(&self, next_step: usize) -> Option<StopCause> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopCause::Cancelled);
            }
        }
        if let Some(max) = self.deadline.max_steps {
            if next_step >= max {
                return Some(StopCause::StepBudget);
            }
        }
        if let Some(wall) = &self.deadline.wall {
            if wall.expired() {
                return Some(StopCause::DeadlineExpired);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_control_never_stops() {
        let control = RunControl::unlimited();
        assert!(control.is_unlimited());
        for step in [0, 1, 1_000_000] {
            assert_eq!(control.should_stop(step), None);
        }
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let control = RunControl::unlimited().with_cancel(token.clone());
        assert_eq!(control.should_stop(0), None);
        token.cancel();
        assert_eq!(control.should_stop(0), Some(StopCause::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn step_budget_stops_exactly_at_the_budget() {
        let control = RunControl::unlimited().with_deadline(Deadline::steps(3));
        assert_eq!(control.should_stop(2), None);
        assert_eq!(control.should_stop(3), Some(StopCause::StepBudget));
        assert_eq!(control.should_stop(4), Some(StopCause::StepBudget));
    }

    #[test]
    fn wall_clock_deadline_stops_once_expired() {
        let expired = Deadline::none().with_wall_clock(SoftDeadline::after(Duration::ZERO));
        let control = RunControl::unlimited().with_deadline(expired);
        assert_eq!(control.should_stop(0), Some(StopCause::DeadlineExpired));

        let generous =
            Deadline::steps(100).with_wall_clock(SoftDeadline::after(Duration::from_secs(3600)));
        let control = RunControl::unlimited().with_deadline(generous);
        assert_eq!(control.should_stop(0), None);
        assert_eq!(control.should_stop(100), Some(StopCause::StepBudget));
    }

    #[test]
    fn cancellation_outranks_the_step_budget() {
        let token = CancelToken::new();
        token.cancel();
        let control = RunControl::unlimited()
            .with_cancel(token)
            .with_deadline(Deadline::steps(0));
        assert_eq!(control.should_stop(5), Some(StopCause::Cancelled));
    }
}
