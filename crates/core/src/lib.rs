//! # flowmax-core
//!
//! The paper's primary contribution: the **F-tree** decomposition (§5), the
//! budgeted greedy edge selection with its heuristics (§6), the evaluation
//! baselines (§7.2), and a brute-force optimum oracle for tiny instances.
//!
//! Quick start:
//!
//! ```
//! use flowmax_core::{solve, Algorithm, SolverConfig};
//! use flowmax_graph::{GraphBuilder, Probability, VertexId, Weight};
//!
//! let mut b = GraphBuilder::new();
//! let q = b.add_vertex(Weight::ZERO);
//! let v = b.add_vertex(Weight::new(5.0).unwrap());
//! b.add_edge(q, v, Probability::new(0.8).unwrap()).unwrap();
//! let graph = b.build();
//!
//! let result = solve(&graph, q, &SolverConfig::paper(Algorithm::FtM, 1, 42));
//! assert!((result.flow - 4.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod error;
pub mod estimator;
pub mod exact;
pub mod ftree;
pub mod metrics;
pub mod selection;
pub mod solver;

pub use baselines::{dijkstra_select, naive_select, NaiveConfig};
pub use error::CoreError;
pub use estimator::{EstimateProvider, EstimatorConfig, SamplingProvider};
pub use exact::{exact_max_flow, ExactSolution, MAX_BRUTE_FORCE_EDGES};
pub use ftree::{
    ComponentId, ComponentView, FTree, InsertCase, InsertReport, ProbeOutcome, ProbePlan,
    SampledProbe,
};
pub use metrics::SelectionMetrics;
pub use selection::{
    greedy_select, CandidateSet, CiEngine, DelayTracker, GreedyConfig, MemoProvider,
    SelectionOutcome,
};
pub use solver::{
    evaluate_selection, evaluate_selection_with_threads, solve, Algorithm, SolveResult,
    SolverConfig,
};
