//! # flowmax-core
//!
//! The paper's primary contribution: the **F-tree** decomposition (§5), the
//! budgeted greedy edge selection with its heuristics (§6), the evaluation
//! baselines (§7.2), and a brute-force optimum oracle for tiny instances.
//!
//! The entry point is the [`Session`] API: one session per graph, any
//! number of queries through its typed builder, `Result`-based errors, and
//! anytime results ([`SolveRun`]) that stream per-iteration
//! [`SelectionStep`] events and answer every budget `≤ k` from one run.
//!
//! Quick start:
//!
//! ```
//! use flowmax_core::{Algorithm, CoreError, Session};
//! use flowmax_graph::{GraphBuilder, Probability, Weight};
//!
//! let mut b = GraphBuilder::new();
//! let q = b.add_vertex(Weight::ZERO);
//! let v = b.add_vertex(Weight::new(5.0).unwrap());
//! b.add_edge(q, v, Probability::new(0.8).unwrap()).unwrap();
//! let graph = b.build();
//!
//! let session = Session::new(&graph).with_seed(42);
//! let run = session.query(q)?.algorithm(Algorithm::FtM).budget(1).run()?;
//! assert!((run.flow - 4.0).abs() < 1e-9);
//! assert_eq!(run.steps.len(), 1); // one SelectionStep per selected edge
//! # Ok::<(), CoreError>(())
//! ```
//!
//! The legacy one-shot [`solve`]/[`SolverConfig`] API is a deprecated shim
//! over the session and produces bit-identical results.
//!
//! ## Serving
//!
//! For long-lived processes answering query streams, the [`serve`] module
//! wraps sessions in a daemon-grade front-end, [`FlowServer`]: graphs stay
//! **resident** (keyed by [`ProbabilisticGraph::fingerprint`], LRU-bounded
//! by [`ServeConfig::max_resident_graphs`]) together with their per-graph
//! [`SessionState`] (the bounded spanning-tree cache), so repeat queries
//! hit warm caches instead of rebuilding them. Admission is **bounded**:
//! at most [`ServeConfig::queue_capacity`] queries queue, and an overfull
//! queue rejects with [`ServeError::Overloaded`] carrying a retry-after
//! hint, instead of buffering without limit. Queued queries against the
//! same graph **coalesce** (up to [`ServeConfig::coalesce_max`]) into one
//! [`Session::run_many_with`] batch over the persistent worker pool, and
//! every query's [`Ticket`] streams anytime [`ServeEvent::Step`] events
//! while the batch runs. The serving contract is **deterministic replay**:
//! a result is a pure function of (graph fingerprint, [`QueryParams`],
//! seed) — any queue state, any coalescing, any thread count — so
//! resubmitting a query reproduces its selection and flows bit for bit. A
//! worker panic fails only the affected batch (with
//! [`CoreError::WorkerPanicked`]); the dispatcher and the pool stay
//! serviceable. The `flowmax-serve` binary exposes exactly this over a TCP
//! line protocol (see its `--help`).
//!
//! [`ProbabilisticGraph::fingerprint`]: flowmax_graph::ProbabilisticGraph::fingerprint

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod cancel;
pub mod clock;
pub mod error;
pub mod estimator;
pub mod exact;
pub mod ftree;
pub mod metrics;
pub mod selection;
pub mod serve;
pub mod session;
pub mod solver;

pub use baselines::{dijkstra_select, dijkstra_select_from_tree, naive_select, NaiveConfig};
pub use cancel::{CancelToken, Deadline, RunControl, StopCause};
pub use clock::SoftDeadline;
pub use error::CoreError;
pub use estimator::{EstimateProvider, EstimatorConfig, SamplingProvider};
pub use exact::{exact_max_flow, ExactSolution, MAX_BRUTE_FORCE_EDGES};
pub use ftree::{
    ComponentId, ComponentRef, FTree, InsertCase, InsertReport, Journal, ProbeOutcome, ProbePlan,
    SampledProbe,
};
pub use metrics::SelectionMetrics;
pub use selection::{
    greedy_select, greedy_select_controlled, greedy_select_observed, CandidateSet, CiEngine,
    DelayTracker, GreedyConfig, MemoProvider, NoObserver, SelectionObserver, SelectionOutcome,
    SelectionStep,
};
pub use serve::{
    FlowServer, QueryParams, ServeConfig, ServeError, ServeEvent, ServeResult, ServeStats, Ticket,
};
pub use session::{
    QueryBuilder, QuerySpec, Session, SessionState, SolveRun, DEFAULT_SPANNING_CACHE_CAPACITY,
};
#[allow(deprecated)]
pub use solver::{
    evaluate_selection, evaluate_selection_with_parallelism, evaluate_selection_with_threads,
    solve, Algorithm, SolveResult, SolverConfig,
};
