//! # flowmax-core
//!
//! The paper's primary contribution: the **F-tree** decomposition (§5), the
//! budgeted greedy edge selection with its heuristics (§6), the evaluation
//! baselines (§7.2), and a brute-force optimum oracle for tiny instances.
//!
//! The entry point is the [`Session`] API: one session per graph, any
//! number of queries through its typed builder, `Result`-based errors, and
//! anytime results ([`SolveRun`]) that stream per-iteration
//! [`SelectionStep`] events and answer every budget `≤ k` from one run.
//!
//! Quick start:
//!
//! ```
//! use flowmax_core::{Algorithm, CoreError, Session};
//! use flowmax_graph::{GraphBuilder, Probability, Weight};
//!
//! let mut b = GraphBuilder::new();
//! let q = b.add_vertex(Weight::ZERO);
//! let v = b.add_vertex(Weight::new(5.0).unwrap());
//! b.add_edge(q, v, Probability::new(0.8).unwrap()).unwrap();
//! let graph = b.build();
//!
//! let session = Session::new(&graph).with_seed(42);
//! let run = session.query(q)?.algorithm(Algorithm::FtM).budget(1).run()?;
//! assert!((run.flow - 4.0).abs() < 1e-9);
//! assert_eq!(run.steps.len(), 1); // one SelectionStep per selected edge
//! # Ok::<(), CoreError>(())
//! ```
//!
//! The legacy one-shot [`solve`]/[`SolverConfig`] API is a deprecated shim
//! over the session and produces bit-identical results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod error;
pub mod estimator;
pub mod exact;
pub mod ftree;
pub mod metrics;
pub mod selection;
pub mod session;
pub mod solver;

pub use baselines::{dijkstra_select, dijkstra_select_from_tree, naive_select, NaiveConfig};
pub use error::CoreError;
pub use estimator::{EstimateProvider, EstimatorConfig, SamplingProvider};
pub use exact::{exact_max_flow, ExactSolution, MAX_BRUTE_FORCE_EDGES};
pub use ftree::{
    ComponentId, ComponentRef, FTree, InsertCase, InsertReport, Journal, ProbeOutcome, ProbePlan,
    SampledProbe,
};
pub use metrics::SelectionMetrics;
pub use selection::{
    greedy_select, greedy_select_observed, CandidateSet, CiEngine, DelayTracker, GreedyConfig,
    MemoProvider, NoObserver, SelectionObserver, SelectionOutcome, SelectionStep,
};
pub use session::{QueryBuilder, QuerySpec, Session, SolveRun};
#[allow(deprecated)]
pub use solver::{
    evaluate_selection, evaluate_selection_with_threads, solve, Algorithm, SolveResult,
    SolverConfig,
};
