//! Instrumentation counters for F-tree maintenance and edge selection.
//!
//! The paper's claims are about *where time goes* (sampling vs analytic
//! propagation, memo hits vs re-sampling); these counters let the experiment
//! harness and the ablation benches report that directly.

/// Counters accumulated during a selection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionMetrics {
    /// Candidate probes evaluated (including memoized ones).
    pub probes: u64,
    /// Probes answered purely analytically (Case II deltas).
    pub analytic_probes: u64,
    /// Components (re-)estimated by Monte-Carlo sampling.
    pub components_sampled: u64,
    /// Components estimated by exact enumeration.
    pub components_enumerated: u64,
    /// Total Monte-Carlo samples drawn (possible worlds of components).
    pub samples_drawn: u64,
    /// Total component edges × samples — the per-edge sampling work.
    pub edge_samples_drawn: u64,
    /// Memoization hits (§6.2): estimates reused without re-sampling.
    pub memo_hits: u64,
    /// Candidates eliminated by confidence-interval pruning (§6.3).
    pub ci_pruned: u64,
    /// Candidate probes skipped because the edge was suspended (§6.4).
    pub ds_skipped: u64,
    /// Edge insertions by structural case (II, IIIa, IIIb, IV).
    pub insert_case_ii: u64,
    /// Case IIIa insertions (cycle inside a bi-connected component).
    pub insert_case_iiia: u64,
    /// Case IIIb insertions (cycle inside a mono-connected component).
    pub insert_case_iiib: u64,
    /// Case IV insertions (cycle across components).
    pub insert_case_iv: u64,
}

impl SelectionMetrics {
    /// Merges counters from another run (e.g. per-iteration aggregation).
    pub fn absorb(&mut self, other: &SelectionMetrics) {
        self.probes += other.probes;
        self.analytic_probes += other.analytic_probes;
        self.components_sampled += other.components_sampled;
        self.components_enumerated += other.components_enumerated;
        self.samples_drawn += other.samples_drawn;
        self.edge_samples_drawn += other.edge_samples_drawn;
        self.memo_hits += other.memo_hits;
        self.ci_pruned += other.ci_pruned;
        self.ds_skipped += other.ds_skipped;
        self.insert_case_ii += other.insert_case_ii;
        self.insert_case_iiia += other.insert_case_iiia;
        self.insert_case_iiib += other.insert_case_iiib;
        self.insert_case_iv += other.insert_case_iv;
    }

    /// Total structural insertions recorded.
    pub fn insertions(&self) -> u64 {
        self.insert_case_ii + self.insert_case_iiia + self.insert_case_iiib + self.insert_case_iv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_counters() {
        let mut a = SelectionMetrics {
            probes: 2,
            memo_hits: 1,
            ..Default::default()
        };
        let b = SelectionMetrics {
            probes: 3,
            samples_drawn: 10,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.probes, 5);
        assert_eq!(a.memo_hits, 1);
        assert_eq!(a.samples_drawn, 10);
    }

    #[test]
    fn insertions_sums_cases() {
        let m = SelectionMetrics {
            insert_case_ii: 1,
            insert_case_iiia: 2,
            insert_case_iiib: 3,
            insert_case_iv: 4,
            ..Default::default()
        };
        assert_eq!(m.insertions(), 10);
    }
}
