//! Differential pinning of the incremental greedy engine (the `O(touched)`
//! iteration) against both reference engines over random graphs, budgets
//! and seeds.
//!
//! Three engines run every selection:
//!
//! * **incremental** — `base + Δ(touched)` flow accounting, replay-based
//!   commits, the versioned candidate bitmap (the default);
//! * **journal reference** — `.with_incremental(false)`: full-tree flow
//!   re-aggregation and `insert_edge` commits (the PR-5 engine);
//! * **cloning reference** — additionally `.with_cloning_probes()`: the
//!   original clone-per-probe engine.
//!
//! All three must agree **bit for bit** — same selections, same per-step
//! flows, same per-step memoization-hit counts — under both confidence-
//! interval race engines and at 1 and 8 sampling threads. Any divergence in
//! the touched-set flow delta, the replay commit, or the bitmap-maintained
//! probe pool shows up here as a first-divergence step report.

use flowmax::core::{greedy_select_observed, CiEngine, GreedyConfig, SelectionStep};
use flowmax::graph::{GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight};
use proptest::prelude::*;

/// A random small uncertain graph: a spanning tree over `n` vertices plus
/// `extra` chords (the same shape the journal proptests exercise).
#[derive(Debug, Clone)]
struct GraphSpec {
    n: usize,
    tree_parents: Vec<usize>,
    chords: Vec<(usize, usize)>,
    probs: Vec<f64>,
    weights: Vec<u8>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (3usize..9).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..n, n - 1).prop_map(move |raw| {
            raw.iter()
                .enumerate()
                .map(|(i, &r)| r % (i + 1))
                .collect::<Vec<_>>()
        });
        let chords = proptest::collection::vec((0usize..n, 0usize..n), 0..5);
        let max_edges = (n - 1) + 5;
        let probs = proptest::collection::vec(0.05f64..=1.0, max_edges);
        let weights = proptest::collection::vec(0u8..10, n);
        (Just(n), tree, chords, probs, weights).prop_map(
            |(n, tree_parents, chords, probs, weights)| GraphSpec {
                n,
                tree_parents,
                chords,
                probs,
                weights,
            },
        )
    })
}

fn build(spec: &GraphSpec) -> ProbabilisticGraph {
    let mut b = GraphBuilder::new();
    for i in 0..spec.n {
        b.add_vertex(Weight::new(spec.weights[i] as f64).unwrap());
    }
    let mut pi = 0usize;
    let mut prob = || {
        let p = spec.probs[pi % spec.probs.len()];
        pi += 1;
        Probability::new(p).unwrap()
    };
    for (i, &parent) in spec.tree_parents.iter().enumerate() {
        b.add_edge(
            VertexId::from_index(i + 1),
            VertexId::from_index(parent),
            prob(),
        )
        .unwrap();
    }
    for &(u, v) in &spec.chords {
        let (u, v) = (u % spec.n, v % spec.n);
        if u != v && !b.has_edge(VertexId::from_index(u), VertexId::from_index(v)) {
            b.add_edge(VertexId::from_index(u), VertexId::from_index(v), prob())
                .unwrap();
        }
    }
    b.build()
}

/// The full observable trace of one selection: everything the engines must
/// agree on, captured per committed step so a mismatch names its step.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    /// Committed edge ids, in commit order.
    selected: Vec<u32>,
    /// Per-step cumulative flow, as exact bits.
    flow_bits: Vec<u64>,
    /// Per-step §6.2 memoization hits (probe cache hits + resumed racing
    /// streams) — the replay-commit gate must not change the hit sequence.
    memo_hits: Vec<u64>,
    /// Per-step probe evaluations.
    probes: Vec<u64>,
    /// The selection's own final flow estimate, as exact bits.
    final_bits: u64,
}

fn trace(graph: &ProbabilisticGraph, config: &GreedyConfig) -> Trace {
    let mut steps: Vec<SelectionStep> = Vec::new();
    let outcome = greedy_select_observed(graph, VertexId(0), config, &mut |s: &SelectionStep| {
        steps.push(*s)
    });
    Trace {
        selected: steps.iter().map(|s| s.edge.0).collect(),
        flow_bits: steps.iter().map(|s| s.flow.to_bits()).collect(),
        memo_hits: steps.iter().map(|s| s.memo_hits).collect(),
        probes: steps.iter().map(|s| s.probes).collect(),
        final_bits: outcome.final_flow.to_bits(),
    }
}

/// The three engine configurations differentiated by this harness.
fn engines(base: &GreedyConfig) -> [(&'static str, GreedyConfig); 3] {
    [
        ("incremental", base.with_incremental(true)),
        ("journal-reference", base.with_incremental(false)),
        (
            "cloning-reference",
            base.with_incremental(false).with_cloning_probes(),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The headline differential property: for every heuristic stack, every
    /// CI race engine and both thread counts, the incremental engine's full
    /// trace (selections, per-step flow bits, per-step memo hits, probe
    /// counts) is identical to both reference engines'.
    #[test]
    fn engines_agree_bit_for_bit(
        (spec, budget, seed) in (graph_spec(), 1usize..7, 0u64..1_000_000)
    ) {
        let g = build(&spec);
        let stacks = [
            GreedyConfig::ft(budget, 48),
            GreedyConfig::ft(budget, 48).with_memo(),
            GreedyConfig::ft(budget, 48).with_memo().with_ci().with_ds(),
        ];
        for stack in stacks {
            let ci_engines: &[CiEngine] = if stack.confidence_pruning {
                &[CiEngine::BatchedRace, CiEngine::ScalarReference]
            } else {
                &[CiEngine::BatchedRace]
            };
            for &ci_engine in ci_engines {
                for threads in [1usize, 8] {
                    let base = GreedyConfig {
                        seed,
                        threads,
                        ci_engine,
                        ..stack
                    };
                    let [(_, inc), (_, journal), (_, cloning)] = engines(&base);
                    let reference = trace(&g, &journal);
                    for (name, cfg) in [("incremental", inc), ("cloning-reference", cloning)] {
                        let t = trace(&g, &cfg);
                        prop_assert_eq!(
                            &t, &reference,
                            "{} diverged from journal-reference (ci={:?}, threads={})",
                            name, ci_engine, threads
                        );
                    }
                }
            }
        }
    }

    /// Thread invariance of the incremental engine on its own: the trace at
    /// 8 sampling threads is bit-identical to the single-threaded one
    /// (replay commits must not perturb the racing seed streams).
    #[test]
    fn incremental_traces_are_thread_invariant(
        (spec, budget, seed) in (graph_spec(), 1usize..7, 0u64..1_000_000)
    ) {
        let g = build(&spec);
        let base = GreedyConfig::ft(budget, 64).with_memo().with_ci().with_ds();
        let solo = trace(&g, &GreedyConfig { seed, threads: 1, ..base });
        let wide = trace(&g, &GreedyConfig { seed, threads: 8, ..base });
        prop_assert_eq!(solo, wide);
    }
}
