//! Integration tests reproducing the paper's worked examples:
//! the Fig. 1 trade-off, the Fig. 3 F-tree decomposition (Example 2), the
//! four edge-insertion walkthroughs of §5.5 (Fig. 4 cases a–d), the §6.4
//! delayed-sampling example (1 % gain, cost 10, c = 2 → d = 9), and a small
//! §6.3 confidence-interval race — the latter two end-to-end through the
//! public solver API.

use flowmax::core::{
    dijkstra_select, evaluate_selection, exact_max_flow, Algorithm, ComponentRef, EstimatorConfig,
    FTree, InsertCase, SamplingProvider, Session,
};
use flowmax::graph::{
    exact_expected_flow, EdgeId, EdgeSubset, GraphBuilder, ProbabilisticGraph, Probability,
    VertexId, Weight, DEFAULT_ENUMERATION_CAP,
};

fn p(v: f64) -> Probability {
    Probability::new(v).unwrap()
}

/// Builds the Fig. 3(a) graph (+ the spare vertex 17 used by Fig. 4(a)):
/// vertices Q=0, 1..16 with weight = id, all probabilities 0.5, 19 edges
/// arranged into components A–F per Example 2.
///
/// Edge ids (by insertion order):
///  A: Q-3 (e0), Q-6 (e1), 3-1 (e2), 6-2 (e3)
///  B: 3-4 (e4), 4-5 (e5), 5-3 (e6)
///  C: 6-7 (e7), 7-8 (e8), 8-9 (e9), 9-6 (e10)
///  D: 9-10 (e11), 10-11 (e12), 11-9 (e13)
///  E: 9-13 (e14), 13-14 (e15), 13-15 (e16), 15-16 (e17)
///  F: 11-12 (e18)
/// Spare edges for Fig. 4: 7-17 (e19), 6-8 (e20), 14-15 (e21), 11-15 (e22).
fn figure3_graph() -> ProbabilisticGraph {
    let mut b = GraphBuilder::new();
    b.add_vertex(Weight::ZERO); // Q
    for w in 1..=17 {
        b.add_vertex(Weight::new(w as f64).unwrap());
    }
    let half = p(0.5);
    let edges: [(u32, u32); 23] = [
        (0, 3),
        (0, 6),
        (3, 1),
        (6, 2),
        (3, 4),
        (4, 5),
        (5, 3),
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 6),
        (9, 10),
        (10, 11),
        (11, 9),
        (9, 13),
        (13, 14),
        (13, 15),
        (15, 16),
        (11, 12),
        // Fig. 4 insertion candidates:
        (7, 17),
        (6, 8),
        (14, 15),
        (11, 15),
    ];
    for (x, y) in edges {
        b.add_edge(VertexId(x), VertexId(y), half).unwrap();
    }
    b.build()
}

fn base_tree(g: &ProbabilisticGraph) -> (FTree, SamplingProvider) {
    let mut tree = FTree::new(g, VertexId(0));
    let mut provider = SamplingProvider::new(EstimatorConfig::exact(), 1);
    for e in 0..19u32 {
        tree.insert_edge(g, EdgeId(e), &mut provider).unwrap();
    }
    tree.validate(g).unwrap();
    (tree, provider)
}

fn find_component<'a, 't>(
    comps: &'a [ComponentRef<'t>],
    members: &[u32],
) -> Option<&'a ComponentRef<'t>> {
    let want: Vec<VertexId> = members.iter().map(|&v| VertexId(v)).collect();
    comps.iter().find(|c| c.members().eq(want.iter().copied()))
}

#[test]
fn figure3_ftree_has_the_papers_component_structure() {
    let g = figure3_graph();
    let (tree, _) = base_tree(&g);
    let comps: Vec<ComponentRef> = tree.components().collect();
    assert_eq!(comps.len(), 6, "components A–F");

    // A = ({1,2,3,6}, Q), mono, root.
    let a = find_component(&comps, &[1, 2, 3, 6]).expect("component A");
    assert!(!a.is_bi());
    assert_eq!(a.articulation, VertexId(0));
    assert_eq!(a.parent, None);

    // B = ({4,5}, 3), bi, child of A.
    let b = find_component(&comps, &[4, 5]).expect("component B");
    assert!(b.is_bi());
    assert_eq!(b.articulation, VertexId(3));
    assert_eq!(b.parent, Some(a.id));
    assert_eq!(b.edge_count(), 3, "2^3 worlds, Example 2");

    // C = ({7,8,9}, 6), bi, child of A.
    let c = find_component(&comps, &[7, 8, 9]).expect("component C");
    assert!(c.is_bi());
    assert_eq!(c.articulation, VertexId(6));
    assert_eq!(c.parent, Some(a.id));
    assert_eq!(c.edge_count(), 4, "2^4 worlds, Example 2");

    // D = ({10,11}, 9), bi, child of C.
    let d = find_component(&comps, &[10, 11]).expect("component D");
    assert!(d.is_bi());
    assert_eq!(d.articulation, VertexId(9));
    assert_eq!(d.parent, Some(c.id));
    assert_eq!(d.edge_count(), 3, "2^3 worlds, Example 2");

    // E = ({13,14,15,16}, 9), mono, child of C.
    let e = find_component(&comps, &[13, 14, 15, 16]).expect("component E");
    assert!(!e.is_bi());
    assert_eq!(e.articulation, VertexId(9));
    assert_eq!(e.parent, Some(c.id));

    // F = ({12}, 11), mono, child of D.
    let f = find_component(&comps, &[12]).expect("component F");
    assert!(!f.is_bi());
    assert_eq!(f.articulation, VertexId(11));
    assert_eq!(f.parent, Some(d.id));
}

#[test]
fn figure3_flow_equals_exact_enumeration() {
    let g = figure3_graph();
    let (tree, _) = base_tree(&g);
    let ftree_flow = tree.expected_flow(&g, false);
    let exact = exact_expected_flow(
        &g,
        tree.selected_edges(),
        VertexId(0),
        false,
        DEFAULT_ENUMERATION_CAP,
    )
    .unwrap();
    assert!(
        (ftree_flow - exact).abs() < 1e-9,
        "Example 2 decomposition must be exact: {ftree_flow} vs {exact}"
    );
}

#[test]
fn figure4a_new_leaf_on_bi_component() {
    // Insert a = (7, 17): Case IIb — new mono G = ({17}, 7) child of C.
    let g = figure3_graph();
    let (mut tree, mut provider) = base_tree(&g);
    let r = tree.insert_edge(&g, EdgeId(19), &mut provider).unwrap();
    assert_eq!(r.case, InsertCase::LeafBi);
    tree.validate(&g).unwrap();
    let comps: Vec<ComponentRef> = tree.components().collect();
    let gcomp = find_component(&comps, &[17]).expect("component G");
    assert!(!gcomp.is_bi());
    assert_eq!(gcomp.articulation, VertexId(7));
    let c = find_component(&comps, &[7, 8, 9]).expect("component C");
    assert_eq!(gcomp.parent, Some(c.id));
}

#[test]
fn figure4b_cycle_inside_bi_component() {
    // Insert b = (6, 8): Case IIIa — C re-estimated, structure unchanged.
    let g = figure3_graph();
    let (mut tree, mut provider) = base_tree(&g);
    let reach_8_before = tree.reach_to_query(VertexId(8));
    let r = tree.insert_edge(&g, EdgeId(20), &mut provider).unwrap();
    assert_eq!(r.case, InsertCase::CycleInBi);
    tree.validate(&g).unwrap();
    assert_eq!(tree.components().count(), 6, "no structural change");
    let comps: Vec<ComponentRef> = tree.components().collect();
    let c = find_component(&comps, &[7, 8, 9]).expect("component C");
    assert_eq!(c.edge_count(), 5);
    assert!(
        tree.reach_to_query(VertexId(8)) > reach_8_before,
        "paper: nodes 7, 8, 9 gain probability from edge b"
    );
}

#[test]
fn figure4c_cycle_inside_mono_component_splits() {
    // Insert c = (14, 15): Case IIIb — E splits into E' = ({13}, 9),
    // G = ({14,15}, 13) bi, H = ({16}, 15) mono.
    let g = figure3_graph();
    let (mut tree, mut provider) = base_tree(&g);
    let r = tree.insert_edge(&g, EdgeId(21), &mut provider).unwrap();
    assert_eq!(r.case, InsertCase::CycleInMono);
    tree.validate(&g).unwrap();
    let comps: Vec<ComponentRef> = tree.components().collect();
    assert_eq!(comps.len(), 8);

    let e_rest = find_component(&comps, &[13]).expect("shrunken E");
    assert!(!e_rest.is_bi());
    assert_eq!(e_rest.articulation, VertexId(9));

    let gcomp = find_component(&comps, &[14, 15]).expect("new bi G");
    assert!(gcomp.is_bi());
    assert_eq!(gcomp.articulation, VertexId(13));
    assert_eq!(gcomp.parent, Some(e_rest.id));
    assert_eq!(gcomp.edge_count(), 3, "13-14, 13-15, 14-15");

    let h = find_component(&comps, &[16]).expect("orphan H");
    assert!(!h.is_bi());
    assert_eq!(h.articulation, VertexId(15), "paper: 16 regrouped under 15");
    assert_eq!(h.parent, Some(gcomp.id));

    // Flow must still match exact enumeration (20 edges: still enumerable).
    let exact = exact_expected_flow(
        &g,
        tree.selected_edges(),
        VertexId(0),
        false,
        DEFAULT_ENUMERATION_CAP,
    )
    .unwrap();
    assert!((tree.expected_flow(&g, false) - exact).abs() < 1e-9);
}

#[test]
fn figure4d_cross_component_cycle() {
    // Insert d = (11, 15): Case IV — D absorbed, path 15-13 carved out of E,
    // meeting trivially at vertex 9 in C: ⃝ = ({10,11,13,15}, 9), with
    // G = ({14}, 13), H = ({16}, 15) and F = ({12}, 11) hanging off ⃝.
    let g = figure3_graph();
    let (mut tree, mut provider) = base_tree(&g);
    let r = tree.insert_edge(&g, EdgeId(22), &mut provider).unwrap();
    assert_eq!(r.case, InsertCase::CycleAcross);
    tree.validate(&g).unwrap();
    let comps: Vec<ComponentRef> = tree.components().collect();

    let ring = find_component(&comps, &[10, 11, 13, 15]).expect("component ⃝");
    assert!(ring.is_bi());
    assert_eq!(ring.articulation, VertexId(9));
    // ⃝'s edges: D's three + 9-13 + 13-15 + the new 11-15 = 6.
    assert_eq!(ring.edge_count(), 6);
    let c = find_component(&comps, &[7, 8, 9]).expect("component C");
    assert_eq!(ring.parent, Some(c.id));

    let gcomp = find_component(&comps, &[14]).expect("orphan G = ({14}, 13)");
    assert_eq!(gcomp.articulation, VertexId(13));
    assert_eq!(gcomp.parent, Some(ring.id));

    let h = find_component(&comps, &[16]).expect("orphan H = ({16}, 15)");
    assert_eq!(h.articulation, VertexId(15));
    assert_eq!(h.parent, Some(ring.id));

    let f = find_component(&comps, &[12]).expect("component F keeps AV 11");
    assert_eq!(f.articulation, VertexId(11));
    assert_eq!(f.parent, Some(ring.id), "F now reports to ⃝");

    let exact = exact_expected_flow(
        &g,
        tree.selected_edges(),
        VertexId(0),
        false,
        DEFAULT_ENUMERATION_CAP,
    )
    .unwrap();
    assert!((tree.expected_flow(&g, false) - exact).abs() < 1e-9);
}

/// §6.4's worked delay example, end-to-end through the solver: a candidate
/// with ~1 % of the best gain and sampling cost 10 must be suspended for
/// exactly `d = ⌊log₂(10 / 0.01…)⌋ = 9` iterations of the `FT+M+DS` run.
///
/// Construction: a 9-edge chain of weight-1000 vertices (selected first),
/// twelve weight-100 leaves at `Q` (gain 50 each, the per-iteration best
/// after the chain), and a low-probability chord `Q–r9` that closes a
/// 10-edge cycle with a gain of ~0.66 — i.e. `pot ≈ 1.3 %`, inside the
/// `d = 9` window `10/pot ∈ [2⁹, 2¹⁰)`.
#[test]
fn section_6_4_delay_example_through_the_solver() {
    let chord_p = 0.00025;
    let mut b = GraphBuilder::new();
    b.add_vertex(Weight::ZERO); // Q
    for _ in 0..9 {
        b.add_vertex(Weight::new(1000.0).unwrap()); // chain r1..r9
    }
    for _ in 0..12 {
        b.add_vertex(Weight::new(100.0).unwrap()); // leaves h1..h12
    }
    let chain_p = p(0.9);
    for k in 0..9u32 {
        b.add_edge(VertexId(k), VertexId(k + 1), chain_p).unwrap(); // e0..e8
    }
    for h in 10..22u32 {
        b.add_edge(VertexId(0), VertexId(h), p(0.5)).unwrap(); // e9..e20
    }
    let chord = b.add_edge(VertexId(0), VertexId(9), p(chord_p)).unwrap(); // e21
    let g = b.build();

    // Sanity of the construction (exact arithmetic): the chord's gain over
    // the selected chain against the best candidate's gain of 50 must land
    // in the window that makes d = 9.
    let chain: Vec<EdgeId> = (0..9).map(EdgeId).collect();
    let mut with_chord = chain.clone();
    with_chord.push(chord);
    let eval = EstimatorConfig::exact();
    let gain = evaluate_selection(&g, VertexId(0), &with_chord, eval, false, 0)
        - evaluate_selection(&g, VertexId(0), &chain, eval, false, 0);
    let pot = gain / 50.0;
    let ratio = 10.0 / pot;
    assert!(
        (512.0..1024.0).contains(&ratio),
        "construction must give d = 9: cost/pot = {ratio}"
    );

    // End-to-end: 9 chain picks, then the chord is probed once (cost 10),
    // suspended for 9 iterations, and the remaining budget selects leaves.
    let session = Session::new(&g).with_seed(4);
    let r = session
        .query(VertexId(0))
        .unwrap()
        .algorithm(Algorithm::FtMDs)
        .budget(19)
        .exact_edge_cap(24) // exact component estimates: the gain is exact
        .run()
        .unwrap();
    assert_eq!(r.selected.len(), 19);
    assert_eq!(&r.selected[..9], &chain[..], "chain first");
    assert!(
        !r.selected.contains(&chord),
        "the suspended chord must never be selected"
    );
    assert_eq!(
        r.metrics.ds_skipped, 9,
        "d = 9: the chord sits out exactly nine probe rounds"
    );
}

/// A small §6.3 race end-to-end through the solver: closing the triangle's
/// last edge is raced against an analytically-probed leaf whose gain
/// dominates, so the racing engine prunes it after the first 64-world round
/// — and the selection matches the unpruned `FT+M` run.
#[test]
fn section_6_3_race_prunes_dominated_cycle_candidate() {
    let mut b = GraphBuilder::new();
    b.add_vertex(Weight::ZERO); // Q
    b.add_vertex(Weight::new(50.0).unwrap()); // b
    b.add_vertex(Weight::new(50.0).unwrap()); // c
    b.add_vertex(Weight::new(40.0).unwrap()); // a
    b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap(); // e0 Q-b
    b.add_edge(VertexId(1), VertexId(2), p(0.9)).unwrap(); // e1 b-c (cycle)
    b.add_edge(VertexId(2), VertexId(0), p(0.9)).unwrap(); // e2 c-Q
    b.add_edge(VertexId(0), VertexId(3), p(0.5)).unwrap(); // e3 Q-a
    let g = b.build();

    // Paper defaults: pure Monte-Carlo estimation, so the cycle candidate
    // e1 (true gain ≈ 8.1) really races and loses to e3 (gain 20).
    let session = Session::new(&g).with_seed(7);
    let run = |alg| {
        session
            .query(VertexId(0))
            .unwrap()
            .algorithm(alg)
            .budget(3)
            .run()
            .unwrap()
    };
    let raced = run(Algorithm::FtMCi);
    assert_eq!(
        raced.selected,
        vec![EdgeId(0), EdgeId(2), EdgeId(3)],
        "commit order by gain; the dominated cycle edge must not be selected"
    );
    assert_eq!(
        raced.metrics.ci_pruned, 1,
        "the cycle candidate is eliminated by the race"
    );

    // The unpruned FT+M run spends the full budget on e1 and still agrees.
    let unpruned = run(Algorithm::FtM);
    assert_eq!(unpruned.selected, raced.selected);
    assert_eq!(unpruned.metrics.ci_pruned, 0);
    assert!(
        raced.metrics.samples_drawn < unpruned.metrics.samples_drawn,
        "racing must sample less than the fixed budget ({} vs {})",
        raced.metrics.samples_drawn,
        unpruned.metrics.samples_drawn
    );
}

/// The Fig. 1 trade-off, on the probability multiset from the paper's
/// `Pr(g1)` computation: a good 5-edge selection beats the 6-edge spanning
/// tree while the full 10-edge activation remains the (costly) maximum.
#[test]
fn figure1_tradeoff_shape() {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..7).map(|_| b.add_vertex(Weight::ONE)).collect();
    let (q, a, bb, c, d, e, f) = (vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6]);
    b.add_edge(q, a, p(0.6)).unwrap();
    b.add_edge(q, bb, p(0.5)).unwrap();
    b.add_edge(a, c, p(0.8)).unwrap();
    b.add_edge(bb, c, p(0.5)).unwrap();
    b.add_edge(a, bb, p(0.4)).unwrap();
    b.add_edge(c, d, p(0.4)).unwrap();
    b.add_edge(bb, d, p(0.4)).unwrap();
    b.add_edge(d, e, p(0.3)).unwrap();
    b.add_edge(q, e, p(0.1)).unwrap();
    b.add_edge(e, f, p(0.1)).unwrap();
    let g = b.build();

    let all = EdgeSubset::full(&g);
    let flow_all = exact_expected_flow(&g, &all, q, false, DEFAULT_ENUMERATION_CAP).unwrap();
    let dj = dijkstra_select(&g, q, usize::MAX, false);
    let opt5 = exact_max_flow(&g, q, 5, false).unwrap();

    assert_eq!(
        dj.selected.len(),
        6,
        "spanning tree reaches all 6 non-Q vertices"
    );
    assert!(
        opt5.flow > dj.final_flow,
        "5-edge optimum ({}) must dominate the 6-edge tree ({})",
        opt5.flow,
        dj.final_flow
    );
    assert!(flow_all > opt5.flow, "full activation is the flow maximum");
}
