//! Chaos: a worker slot killed mid-batch underneath a `FlowServer`.
//!
//! This lives in its own test binary because the `pool/worker` failpoint
//! fires on the process-global `WorkerPool` — arming it inside a shared
//! binary would bleed injected deaths into unrelated tests' pool jobs.
//! Here the armed window owns the whole process.

#![cfg(feature = "faults")]

use flowmax::core::{CoreError, FlowServer, QueryParams, ServeConfig, ServeResult};
use flowmax::graph::{GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight};
use flowmax::sampling::WorkerPool;
use flowmax_faults::{self as faults, FailPlan};

fn diamond() -> ProbabilisticGraph {
    let p = |v| Probability::new(v).unwrap();
    let mut b = GraphBuilder::new();
    b.add_vertices(5, Weight::ONE);
    b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap();
    b.add_edge(VertexId(0), VertexId(2), p(0.8)).unwrap();
    b.add_edge(VertexId(1), VertexId(3), p(0.7)).unwrap();
    b.add_edge(VertexId(2), VertexId(3), p(0.6)).unwrap();
    b.add_edge(VertexId(3), VertexId(4), p(0.5)).unwrap();
    b.build()
}

fn params(vertex: u32, budget: usize) -> QueryParams {
    let mut params = QueryParams::new(VertexId(vertex), budget);
    params.samples = 200;
    params
}

/// Submits a coalesced pair against one server and waits for both. A
/// 2-query batch is the smallest that fans out over the pool (`run_jobs`
/// hands chunk 1 to worker slot 0; chunk 0 stays on the dispatcher).
fn coalesced_pair(
    server: &FlowServer,
    fp: u64,
) -> (
    Result<ServeResult, CoreError>,
    Result<ServeResult, CoreError>,
) {
    server.pause();
    let a = server.submit(fp, params(0, 3)).unwrap();
    let b = server.submit(fp, params(1, 3)).unwrap();
    server.resume();
    (a.wait(), b.wait())
}

/// A worker slot scheduled to die on its first task fails the in-flight
/// batch loudly; the pool respawns the slot, and the same server answers
/// the retry bit-identically to an unfaulted run.
#[test]
fn dead_worker_slot_mid_batch_is_respawned_and_the_retry_is_identical() {
    let g = diamond();
    let reference = {
        let server = FlowServer::new(ServeConfig {
            threads: 4,
            ..ServeConfig::default()
        });
        let fp = server.load_graph(g.clone());
        let (a, b) = coalesced_pair(&server, fp);
        (a.unwrap(), b.unwrap())
    };

    let server = FlowServer::new(ServeConfig {
        threads: 4,
        ..ServeConfig::default()
    });
    let fp = server.load_graph(g);

    // Kill slot 0 on the first task it receives after arming.
    faults::install(FailPlan::new(13).fail_key_nth("pool/worker", 0, &[0]));
    let (a, b) = coalesced_pair(&server, fp);
    faults::clear();
    for doomed in [a, b] {
        assert!(
            matches!(doomed, Err(CoreError::WorkerPanicked(_))),
            "the killed slot must fail the whole batch loudly: {doomed:?}"
        );
    }

    // The next dispatch discovers the dead slot, respawns it, and the
    // retry is bit-identical to the unfaulted reference — the dispatcher
    // and the pool both survived the fault.
    let (a, b) = coalesced_pair(&server, fp);
    let (a, b) = (a.expect("retry a"), b.expect("retry b"));
    assert_eq!(a.selected, reference.0.selected);
    assert_eq!(a.flow, reference.0.flow);
    assert_eq!(b.selected, reference.1.selected);
    assert_eq!(b.flow, reference.1.flow);
    assert!(
        WorkerPool::global().restarts() >= 1,
        "the dead slot must have been respawned"
    );
}
