//! Property-based tests of the graph substrates against each other and
//! against exact enumeration.

use flowmax::graph::{
    biconnected_components, count_simple_paths, exact_reachability, exact_two_terminal,
    max_probability_spanning_tree_full, reliability_bounds, world_probability, EdgeSubset,
    GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SmallGraph {
    n: usize,
    tree_parents: Vec<usize>,
    chords: Vec<(usize, usize)>,
    probs: Vec<f64>,
}

fn small_graph() -> impl Strategy<Value = SmallGraph> {
    (3usize..8).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..n, n - 1).prop_map(move |raw| {
            raw.iter()
                .enumerate()
                .map(|(i, &r)| r % (i + 1))
                .collect::<Vec<_>>()
        });
        let chords = proptest::collection::vec((0usize..n, 0usize..n), 0..4);
        let probs = proptest::collection::vec(0.05f64..=1.0, (n - 1) + 4);
        (Just(n), tree, chords, probs).prop_map(|(n, tree_parents, chords, probs)| SmallGraph {
            n,
            tree_parents,
            chords,
            probs,
        })
    })
}

fn build(spec: &SmallGraph) -> ProbabilisticGraph {
    let mut b = GraphBuilder::new();
    b.add_vertices(spec.n, Weight::ONE);
    let mut pi = 0;
    let next_prob = |pi: &mut usize| {
        let p = spec.probs[*pi % spec.probs.len()];
        *pi += 1;
        Probability::new(p).unwrap()
    };
    for (i, &parent) in spec.tree_parents.iter().enumerate() {
        b.add_edge(
            VertexId::from_index(i + 1),
            VertexId::from_index(parent),
            next_prob(&mut pi),
        )
        .unwrap();
    }
    for &(u, v) in &spec.chords {
        let (u, v) = (u % spec.n, v % spec.n);
        if u != v && !b.has_edge(VertexId::from_index(u), VertexId::from_index(v)) {
            b.add_edge(
                VertexId::from_index(u),
                VertexId::from_index(v),
                next_prob(&mut pi),
            )
            .unwrap();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocks of the biconnected decomposition partition the active edges,
    /// and cyclic blocks are exactly the pairs with ≥2 simple paths.
    #[test]
    fn biconnected_blocks_partition_edges(spec in small_graph()) {
        let g = build(&spec);
        let full = EdgeSubset::full(&g);
        let deco = biconnected_components(&g, &full);
        let mut all: Vec<u32> = deco.blocks.iter().flatten().map(|e| e.0).collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..g.edge_count() as u32).collect();
        prop_assert_eq!(all, expect);

        // Endpoints of an edge in a cyclic block are bi-connected.
        for block in deco.cyclic_blocks() {
            for &e in block {
                let (a, b) = g.endpoints(e);
                let paths = count_simple_paths(&g, &full, a, b, 2);
                prop_assert!(paths >= 2, "edge {:?} in cyclic block but mono pair", e);
            }
        }
    }

    /// The spanning tree's path probability to each vertex is a valid lower
    /// bound on exact two-terminal reliability, and equals the product along
    /// an actually existing path.
    #[test]
    fn spanning_tree_lower_bounds_reliability(spec in small_graph()) {
        let g = build(&spec);
        let t = max_probability_spanning_tree_full(&g, VertexId(0));
        let full = EdgeSubset::full(&g);
        let exact = exact_reachability(&g, &full, VertexId(0), 24).unwrap();
        for v in g.vertices() {
            prop_assert!(t.path_probability[v.index()] <= exact[v.index()] + 1e-9);
        }
    }

    /// Analytic reliability bounds always bracket exact reachability.
    #[test]
    fn reliability_bounds_bracket_exact(spec in small_graph()) {
        let g = build(&spec);
        let full = EdgeSubset::full(&g);
        let bounds = reliability_bounds(&g, &full, VertexId(0));
        let exact = exact_reachability(&g, &full, VertexId(0), 24).unwrap();
        for v in g.vertices() {
            prop_assert!(bounds.lower[v.index()] <= exact[v.index()] + 1e-9);
            prop_assert!(bounds.upper[v.index()] + 1e-9 >= exact[v.index()]);
        }
    }

    /// World probabilities over all worlds of a domain sum to one.
    #[test]
    fn world_probabilities_form_a_distribution(spec in small_graph()) {
        let g = build(&spec);
        // Keep the domain small: at most 10 edges.
        let domain = EdgeSubset::from_edges(
            g.edge_count(),
            g.edge_ids().take(10),
        );
        let edges: Vec<_> = domain.iter().collect();
        let mut total = 0.0;
        for mask in 0u32..(1 << edges.len()) {
            let mut world = EdgeSubset::new(g.edge_count());
            for (bit, &e) in edges.iter().enumerate() {
                if mask >> bit & 1 == 1 {
                    world.insert(e);
                }
            }
            total += world_probability(&g, &domain, &world);
        }
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {}", total);
    }

    /// Two-terminal reliability is monotone: activating more edges never
    /// decreases it.
    #[test]
    fn reliability_is_monotone_in_edges(spec in small_graph()) {
        let g = build(&spec);
        let full = EdgeSubset::full(&g);
        let mut partial = EdgeSubset::for_graph(&g);
        // Tree edges only.
        for e in g.edge_ids().take(spec.n - 1) {
            partial.insert(e);
        }
        let target = VertexId::from_index(spec.n - 1);
        let with_partial = exact_two_terminal(&g, &partial, VertexId(0), target, 24).unwrap();
        let with_full = exact_two_terminal(&g, &full, VertexId(0), target, 24).unwrap();
        prop_assert!(with_full + 1e-12 >= with_partial);
    }
}
