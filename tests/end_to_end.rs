//! End-to-end pipeline smoke tests: every dataset spec through the full
//! solver stack at test-friendly scales.

use flowmax::core::{Algorithm, Session};
use flowmax::datasets::{
    suggest_query, CollaborationConfig, DatasetSpec, ErdosConfig, PartitionedConfig,
    PreferentialConfig, RoadConfig, SocialCircleConfig, WeightModel, WsnConfig,
};

fn specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec::Erdos(ErdosConfig::paper(200, 5.0)),
        DatasetSpec::Partitioned(PartitionedConfig::paper(200, 6)),
        DatasetSpec::Wsn(WsnConfig::paper(200, 0.09)),
        DatasetSpec::Road(RoadConfig::paper(12, 12)),
        DatasetSpec::SocialCircle(SocialCircleConfig {
            vertices: 80,
            edges: 500,
            close_friends_per_user: 6,
            weights: WeightModel::paper_default(),
        }),
        DatasetSpec::Collaboration(CollaborationConfig::paper_scaled(300)),
        DatasetSpec::Preferential(PreferentialConfig::paper_scaled(300)),
    ]
}

#[test]
fn every_workload_solves_with_the_full_heuristic_stack() {
    for spec in specs() {
        let g = spec.build(42);
        let q = suggest_query(&g);
        let session = Session::new(&g).with_seed(7);
        let r = session
            .query(q)
            .unwrap()
            .algorithm(Algorithm::FtMCiDs)
            .budget(15)
            .samples(300)
            .run()
            .unwrap();
        assert!(!r.selected.is_empty(), "{}: nothing selected", spec.name());
        assert!(r.selected.len() <= 15, "{}: budget violated", spec.name());
        assert!(r.flow > 0.0, "{}: zero flow", spec.name());
        assert!(
            r.flow <= g.total_weight() + 1e-6,
            "{}: flow exceeds total weight",
            spec.name()
        );
    }
}

#[test]
fn selections_are_connected_to_the_query() {
    use flowmax::graph::{Bfs, EdgeSubset};
    for spec in specs() {
        let g = spec.build(43);
        let q = suggest_query(&g);
        let session = Session::new(&g).with_seed(8);
        let r = session
            .query(q)
            .unwrap()
            .algorithm(Algorithm::FtM)
            .budget(12)
            .samples(200)
            .run()
            .unwrap();
        let subset = EdgeSubset::from_edges(g.edge_count(), r.selected.iter().copied());
        let mut bfs = Bfs::new(g.vertex_count());
        let mut edge_touched = 0usize;
        bfs.run(&g, q, |e| subset.contains(e), |_| {});
        for &e in &r.selected {
            let (a, b) = g.endpoints(e);
            if bfs.was_visited(a) && bfs.was_visited(b) {
                edge_touched += 1;
            }
        }
        assert_eq!(
            edge_touched,
            r.selected.len(),
            "{}: greedy must keep the selection connected",
            spec.name()
        );
    }
}

#[test]
fn locality_keeps_selection_near_query() {
    // Paper Fig. 5(a): under locality, only a local neighbourhood matters.
    let wsn = WsnConfig::paper(500, 0.08).generate(9);
    let g = &wsn.graph;
    let q = suggest_query(g);
    let (qx, qy) = wsn.positions[q.index()];
    let session = Session::new(g).with_seed(10);
    let r = session
        .query(q)
        .unwrap()
        .algorithm(Algorithm::FtM)
        .budget(20)
        .samples(200)
        .run()
        .unwrap();
    for &e in &r.selected {
        let (a, b) = g.endpoints(e);
        for v in [a, b] {
            let (x, y) = wsn.positions[v.index()];
            let d = ((x - qx).powi(2) + (y - qy).powi(2)).sqrt();
            assert!(
                d < 0.5,
                "selected vertex {v:?} at distance {d} — selection should stay local"
            );
        }
    }
}

#[test]
fn evaluation_flow_tracks_algorithm_flow() {
    // The solver's uniform evaluator should be within sampling noise of the
    // algorithm's own final estimate.
    let g = ErdosConfig::paper(200, 5.0).generate(11);
    let q = suggest_query(&g);
    let session = Session::new(&g).with_seed(12);
    let r = session
        .query(q)
        .unwrap()
        .algorithm(Algorithm::FtM)
        .budget(15)
        .run()
        .unwrap();
    let rel = (r.flow - r.algorithm_flow).abs() / r.flow.max(1e-9);
    assert!(
        rel < 0.15,
        "uniform evaluation {} vs algorithm estimate {} (rel {rel})",
        r.flow,
        r.algorithm_flow
    );
}
