//! Property tests for the batched candidate-racing engine (§6.3 + §6.4):
//! on random small graphs, the racing greedy — confidence-interval pruning,
//! delayed sampling, Monte-Carlo estimates — must pick an edge whose *true*
//! (exact-enumeration) flow is within the race's confidence tolerance of
//! the unpruned exhaustive greedy pick, and the pick must be bit-identical
//! at every thread count.

use flowmax::core::{evaluate_selection, greedy_select, EstimatorConfig, GreedyConfig};
use flowmax::graph::{GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight};
use flowmax::sampling::z_for_alpha;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SmallGraph {
    n: usize,
    tree_parents: Vec<usize>,
    chords: Vec<(usize, usize)>,
    probs: Vec<f64>,
    weights: Vec<f64>,
    seed: u64,
}

fn small_graph() -> impl Strategy<Value = SmallGraph> {
    (4usize..9).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..n, n - 1).prop_map(move |raw| {
            raw.iter()
                .enumerate()
                .map(|(i, &r)| r % (i + 1))
                .collect::<Vec<_>>()
        });
        let chords = proptest::collection::vec((0usize..n, 0usize..n), 1..5);
        let probs = proptest::collection::vec(0.1f64..=0.95, (n - 1) + 5);
        let weights = proptest::collection::vec(0.5f64..10.0, n);
        let seed = 0u64..1_000;
        (Just(n), tree, chords, probs, weights, seed).prop_map(
            |(n, tree_parents, chords, probs, weights, seed)| SmallGraph {
                n,
                tree_parents,
                chords,
                probs,
                weights,
                seed,
            },
        )
    })
}

fn build(spec: &SmallGraph) -> ProbabilisticGraph {
    let mut b = GraphBuilder::new();
    b.add_vertex(Weight::ZERO); // the query vertex
    for w in &spec.weights[1..] {
        b.add_vertex(Weight::new(*w).unwrap());
    }
    let mut pi = 0;
    let mut next_prob = || {
        let p = spec.probs[pi % spec.probs.len()];
        pi += 1;
        Probability::new(p).unwrap()
    };
    for (i, &parent) in spec.tree_parents.iter().enumerate() {
        b.add_edge(
            VertexId::from_index(i + 1),
            VertexId::from_index(parent),
            next_prob(),
        )
        .unwrap();
    }
    for &(u, v) in &spec.chords {
        let (u, v) = (u % spec.n, v % spec.n);
        if u != v && !b.has_edge(VertexId::from_index(u), VertexId::from_index(v)) {
            b.add_edge(
                VertexId::from_index(u),
                VertexId::from_index(v),
                next_prob(),
            )
            .unwrap();
        }
    }
    b.build()
}

/// True expected flow of a selection, by exact enumeration (small graphs
/// never exceed the cap).
fn exact_flow(g: &ProbabilisticGraph, selection: &[flowmax::graph::EdgeId]) -> f64 {
    evaluate_selection(
        g,
        VertexId(0),
        selection,
        EstimatorConfig::exact(),
        false,
        0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The racing pick is never worse than the exhaustive pick by more than
    /// the race's own confidence tolerance, and is thread-count invariant.
    #[test]
    fn racing_pick_within_ci_tolerance_of_exhaustive(spec in small_graph()) {
        let g = build(&spec);
        // The unpruned, exhaustive baseline: every candidate probed with
        // exact enumeration — the noise-free greedy pick.
        let mut exhaustive_cfg = GreedyConfig::ft(1, spec.seed);
        exhaustive_cfg.exact_edge_cap = 24;
        let exhaustive = greedy_select(&g, VertexId(0), &exhaustive_cfg);
        if exhaustive.selected.is_empty() {
            // The query vertex is isolated; nothing to compare.
            return;
        }

        // The racing greedy: CI pruning + delayed sampling on Monte-Carlo
        // estimates (the full FT+M+CI+DS stack).
        let mut racing_cfg = GreedyConfig::ft(1, spec.seed).with_memo().with_ci().with_ds();
        racing_cfg.samples = 500; // racing quantizes up to ≥ 512-world finals
        let racing = greedy_select(&g, VertexId(0), &racing_cfg.with_threads(1));
        prop_assert_eq!(racing.selected.len(), 1);

        // Bit-identical selection at every thread count.
        for threads in [2usize, 8] {
            let t = greedy_select(&g, VertexId(0), &racing_cfg.with_threads(threads));
            prop_assert_eq!(&t.selected, &racing.selected, "threads = {}", threads);
            prop_assert_eq!(t.final_flow, racing.final_flow, "threads = {}", threads);
        }

        // CI tolerance: a surviving estimate has ≥ 512 worlds, so each
        // vertex's reach is within z·½/√512 of truth at 1 − α; summed over
        // the graph's weight and doubled for the two compared estimates.
        let total_weight: f64 = g.total_weight();
        let tol = 2.0 * z_for_alpha(0.01) * 0.5 / (512f64).sqrt() * total_weight + 1e-9;
        let racing_flow = exact_flow(&g, &racing.selected);
        let exhaustive_flow = exact_flow(&g, &exhaustive.selected);
        prop_assert!(
            racing_flow >= exhaustive_flow - tol,
            "racing pick {:?} (true flow {}) trails exhaustive pick {:?} (true flow {}) beyond tol {}",
            racing.selected, racing_flow, exhaustive.selected, exhaustive_flow, tol
        );
    }

    /// Racing and the scalar reference race agree with each other to the
    /// same tolerance — the batched engine changes the schedule, never the
    /// statistics.
    #[test]
    fn racing_and_scalar_reference_agree_on_quality(spec in small_graph()) {
        let g = build(&spec);
        let base = GreedyConfig::ft(2, spec.seed).with_memo();
        let racing = greedy_select(&g, VertexId(0), &base.with_ci());
        let scalar = greedy_select(&g, VertexId(0), &base.with_scalar_ci());
        if racing.selected.is_empty() {
            prop_assert!(scalar.selected.is_empty());
            return;
        }
        let total_weight: f64 = g.total_weight();
        let tol = 2.0 * z_for_alpha(0.01) * 0.5 / (512f64).sqrt() * total_weight + 1e-9;
        let rf = exact_flow(&g, &racing.selected);
        let sf = exact_flow(&g, &scalar.selected);
        prop_assert!(
            (rf - sf).abs() <= tol + 0.1 * total_weight,
            "engines diverged: racing {} vs scalar {} (tol {})", rf, sf, tol
        );
    }
}
