//! Cross-algorithm comparisons mirroring the paper's headline claims
//! (§7.5): Naive is the most expensive estimator; Dijkstra is fastest but
//! weakest on cyclic/dense graphs; all FT variants deliver comparable flow
//! with decreasing cost as heuristics stack.

use flowmax::core::{Algorithm, Session};
use flowmax::datasets::{
    suggest_query, ErdosConfig, PartitionedConfig, SocialCircleConfig, WeightModel,
};

#[test]
fn naive_works_orders_of_magnitude_harder_than_ft() {
    let g = ErdosConfig::paper(300, 6.0).generate(1);
    let q = suggest_query(&g);
    let session = Session::new(&g).with_seed(2);
    // 200 samples keeps the naive baseline affordable in tests.
    let run = |alg| {
        session
            .query(q)
            .unwrap()
            .algorithm(alg)
            .budget(12)
            .samples(200)
            .run()
            .unwrap()
    };
    let naive = run(Algorithm::Naive);
    let ft = run(Algorithm::FtM);
    assert!(
        naive.metrics.edge_samples_drawn > 20 * ft.metrics.edge_samples_drawn.max(1),
        "naive per-edge sampling work ({}) must dwarf FT+M ({})",
        naive.metrics.edge_samples_drawn,
        ft.metrics.edge_samples_drawn
    );
}

#[test]
fn dijkstra_never_samples_and_loses_flow_on_dense_graphs() {
    let g = SocialCircleConfig {
        vertices: 120,
        edges: 900,
        close_friends_per_user: 8,
        weights: WeightModel::paper_default(),
    }
    .generate(3);
    let q = suggest_query(&g);
    let session = Session::new(&g).with_seed(4);
    let run = |alg| {
        session
            .query(q)
            .unwrap()
            .algorithm(alg)
            .budget(25)
            .run()
            .unwrap()
    };
    let dj = run(Algorithm::Dijkstra);
    let ft = run(Algorithm::FtM);
    assert_eq!(dj.metrics.components_sampled, 0);
    assert_eq!(dj.metrics.samples_drawn, 0);
    assert!(
        ft.flow > dj.flow,
        "paper Fig. 9(b): FT ({}) must beat Dijkstra ({}) on dense social graphs",
        ft.flow,
        dj.flow
    );
}

#[test]
fn ft_variants_agree_on_flow_within_noise() {
    let g = PartitionedConfig::paper(300, 6).generate(5);
    let q = suggest_query(&g);
    let session = Session::new(&g).with_seed(6);
    let mut flows = Vec::new();
    for alg in [Algorithm::Ft, Algorithm::FtM, Algorithm::FtMDs] {
        let r = session
            .query(q)
            .unwrap()
            .algorithm(alg)
            .budget(20)
            .run()
            .unwrap();
        flows.push((alg.name(), r.flow));
    }
    let max = flows.iter().map(|&(_, f)| f).fold(f64::MIN, f64::max);
    for &(name, f) in &flows {
        assert!(
            f > 0.85 * max,
            "{name} flow {f} too far below the best variant ({max}); all: {flows:?}"
        );
    }
}

#[test]
fn memoization_cuts_component_sampling() {
    let g = PartitionedConfig::paper(200, 6).generate(7);
    let q = suggest_query(&g);
    let session = Session::new(&g).with_seed(8);
    let run = |alg| {
        session
            .query(q)
            .unwrap()
            .algorithm(alg)
            .budget(25)
            .run()
            .unwrap()
    };
    let ft = run(Algorithm::Ft);
    let ftm = run(Algorithm::FtM);
    assert!(ftm.metrics.memo_hits > 0, "memoization must fire");
    assert!(
        ftm.metrics.components_sampled < ft.metrics.components_sampled,
        "FT+M sampled {} components, plain FT {}",
        ftm.metrics.components_sampled,
        ft.metrics.components_sampled
    );
}

#[test]
fn delayed_sampling_skips_probes() {
    let g = PartitionedConfig::paper(200, 8).generate(9);
    let q = suggest_query(&g);
    let session = Session::new(&g).with_seed(10);
    let run = |alg| {
        session
            .query(q)
            .unwrap()
            .algorithm(alg)
            .budget(20)
            .run()
            .unwrap()
    };
    let ftm = run(Algorithm::FtM);
    let ftmds = run(Algorithm::FtMDs);
    assert!(
        ftmds.metrics.ds_skipped > 0,
        "DS must suspend some candidates"
    );
    assert!(
        ftmds.flow > 0.8 * ftm.flow,
        "DS flow {} must stay close to FT+M flow {}",
        ftmds.flow,
        ftm.flow
    );
}

#[test]
fn ci_prunes_candidates() {
    let g = PartitionedConfig::paper(200, 6).generate(11);
    let q = suggest_query(&g);
    let session = Session::new(&g).with_seed(12);
    let r = session
        .query(q)
        .unwrap()
        .algorithm(Algorithm::FtMCi)
        .budget(15)
        .run()
        .unwrap();
    assert!(
        r.metrics.ci_pruned > 0,
        "CI should eliminate at least some candidates on a cyclic workload"
    );
    assert!(r.flow > 0.0);
}

#[test]
fn all_algorithms_stay_within_total_weight() {
    let g = ErdosConfig::paper(150, 5.0).generate(13);
    let q = suggest_query(&g);
    let bound = g.total_weight();
    let session = Session::new(&g).with_seed(14);
    for alg in Algorithm::all() {
        let r = session
            .query(q)
            .unwrap()
            .algorithm(alg)
            .budget(10)
            .samples(300)
            .run()
            .unwrap();
        assert!(
            r.flow <= bound + 1e-6,
            "{}: flow {} exceeds total weight {bound}",
            alg.name(),
            r.flow
        );
        assert!(r.flow >= 0.0);
    }
}
