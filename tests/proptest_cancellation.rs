//! Property tests for the degraded-answer contract: a run stopped early —
//! by a step-budget deadline or a cancellation token — must return a
//! selection bit-identical to the same-seed uncancelled run's prefix
//! (`selection_at(j)`), at every thread count and lane width. Degradation
//! moves the stop point; it never changes what was selected up to it.

use flowmax::core::{Algorithm, CancelToken, Deadline, RunControl, Session, StopCause};
use flowmax::datasets::{suggest_query, ErdosConfig};
use flowmax::graph::ProbabilisticGraph;
use proptest::prelude::*;

const BUDGET: usize = 6;

fn graph(seed: u64) -> ProbabilisticGraph {
    ErdosConfig::paper(60, 4.0).generate(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Deadline::steps(j)` yields exactly `selection_at(j)` of the
    /// uncontrolled same-seed run — under every (threads, lanes) pairing,
    /// all compared against a single-threaded reference.
    #[test]
    fn step_budget_stop_is_bit_identical_to_the_full_runs_prefix(
        (graph_seed, session_seed, j, threads_idx, lanes_idx)
            in (0u64..200, 0u64..200, 0usize..=BUDGET, 0usize..3, 0usize..3)
    ) {
        let g = graph(graph_seed);
        let q = suggest_query(&g);
        let reference = Session::new(&g).with_seed(session_seed).with_threads(1);
        let full = reference
            .query(q).unwrap()
            .algorithm(Algorithm::FtMCiDs)
            .budget(BUDGET)
            .samples(200)
            .run()
            .unwrap();
        prop_assert!(full.stopped.is_none());

        let threads = [1usize, 2, 8][threads_idx];
        let lanes = [1usize, 4, 8][lanes_idx];
        let session = Session::new(&g)
            .with_seed(session_seed)
            .with_threads(threads)
            .with_lane_words(lanes);
        let control = RunControl::unlimited().with_deadline(Deadline::steps(j));
        let degraded = session
            .query(q).unwrap()
            .algorithm(Algorithm::FtMCiDs)
            .budget(BUDGET)
            .samples(200)
            .run_controlled(&control)
            .unwrap();

        let expected_len = j.min(full.selected.len());
        prop_assert_eq!(
            degraded.selected.as_slice(),
            full.selection_at(expected_len),
            "threads={} lanes={} j={}", threads, lanes, j
        );
        if j < full.selected.len() {
            prop_assert_eq!(degraded.stopped, Some(StopCause::StepBudget));
            prop_assert_eq!(
                degraded.flow.to_bits(),
                full.flow_at(j).to_bits(),
                "degraded flow must be the prefix oracle's, bit for bit"
            );
        } else {
            // The budget ran out before the deadline did: a full answer.
            prop_assert!(degraded.stopped.is_none());
            prop_assert_eq!(degraded.flow.to_bits(), full.flow.to_bits());
        }
    }

    /// Cancelling from the step observer at iteration `j` stops the run
    /// right after that commit: the selection is `selection_at(j + 1)` of
    /// the uncancelled run, bit for bit, at every thread count.
    #[test]
    fn cancelling_at_iteration_j_keeps_the_committed_prefix(
        (graph_seed, session_seed, j, threads_idx)
            in (0u64..200, 0u64..200, 0usize..BUDGET, 0usize..3)
    ) {
        let g = graph(graph_seed);
        let q = suggest_query(&g);
        let reference = Session::new(&g).with_seed(session_seed).with_threads(1);
        let full = reference
            .query(q).unwrap()
            .algorithm(Algorithm::FtM)
            .budget(BUDGET)
            .samples(200)
            .run()
            .unwrap();

        let threads = [1usize, 2, 8][threads_idx];
        let session = Session::new(&g).with_seed(session_seed).with_threads(threads);
        let token = CancelToken::new();
        let control = RunControl::unlimited().with_cancel(token.clone());
        let trigger = token.clone();
        let cancelled = session
            .query(q).unwrap()
            .algorithm(Algorithm::FtM)
            .budget(BUDGET)
            .samples(200)
            .run_controlled_with(&control, &mut |step: &flowmax::core::SelectionStep| {
                if step.iteration == j {
                    trigger.cancel();
                }
            })
            .unwrap();

        // The cancel lands during iteration j's commit callback, so the
        // run keeps exactly j + 1 edges (or everything, if it finished
        // before reaching iteration j).
        let expected_len = (j + 1).min(full.selected.len());
        prop_assert_eq!(
            cancelled.selected.as_slice(),
            full.selection_at(expected_len),
            "threads={} j={}", threads, j
        );
        if expected_len < full.selected.len() {
            prop_assert_eq!(cancelled.stopped, Some(StopCause::Cancelled));
        }
    }

    /// A token cancelled before submission stops the run at step zero:
    /// an empty — but valid, and deterministic — degraded answer.
    #[test]
    fn pre_cancelled_runs_return_an_empty_prefix(
        (graph_seed, session_seed) in (0u64..200, 0u64..200)
    ) {
        let g = graph(graph_seed);
        let q = suggest_query(&g);
        let token = CancelToken::new();
        token.cancel();
        let control = RunControl::unlimited().with_cancel(token);
        let run = Session::new(&g)
            .with_seed(session_seed)
            .query(q).unwrap()
            .algorithm(Algorithm::FtMCiDs)
            .budget(BUDGET)
            .samples(200)
            .run_controlled(&control)
            .unwrap();
        prop_assert!(run.selected.is_empty());
        prop_assert_eq!(run.stopped, Some(StopCause::Cancelled));
    }
}
