//! Property-based tests of the F-tree invariants over randomly generated
//! graphs and insertion orders (proptest).

use flowmax::core::{EstimatorConfig, FTree, SamplingProvider};
use flowmax::graph::{
    exact_expected_flow, EdgeId, GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight,
    DEFAULT_ENUMERATION_CAP,
};
use proptest::prelude::*;

/// A random small uncertain graph: a spanning tree over `n` vertices plus
/// `extra` chords, with arbitrary probabilities and small integer weights.
#[derive(Debug, Clone)]
struct GraphSpec {
    n: usize,
    tree_parents: Vec<usize>, // parent of vertex i+1 within 0..=i
    chords: Vec<(usize, usize)>,
    probs: Vec<f64>,
    weights: Vec<u8>,
    order_seed: Vec<usize>, // drives the insertion-order shuffle
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (3usize..9).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..n, n - 1).prop_map(move |raw| {
            // parent of vertex i (1-based) must be < i
            raw.iter()
                .enumerate()
                .map(|(i, &r)| r % (i + 1))
                .collect::<Vec<_>>()
        });
        let chords = proptest::collection::vec((0usize..n, 0usize..n), 0..5);
        let max_edges = (n - 1) + 5;
        let probs = proptest::collection::vec(0.05f64..=1.0, max_edges);
        let weights = proptest::collection::vec(0u8..10, n);
        let order = proptest::collection::vec(0usize..64, max_edges);
        (Just(n), tree, chords, probs, weights, order).prop_map(
            |(n, tree_parents, chords, probs, weights, order_seed)| GraphSpec {
                n,
                tree_parents,
                chords,
                probs,
                weights,
                order_seed,
            },
        )
    })
}

fn build(spec: &GraphSpec) -> ProbabilisticGraph {
    let mut b = GraphBuilder::new();
    for i in 0..spec.n {
        b.add_vertex(Weight::new(spec.weights[i] as f64).unwrap());
    }
    let mut pi = 0usize;
    let prob = |pi: &mut usize| {
        let p = spec.probs[*pi % spec.probs.len()];
        *pi += 1;
        Probability::new(p).unwrap()
    };
    for (i, &parent) in spec.tree_parents.iter().enumerate() {
        let child = i + 1;
        b.add_edge(
            VertexId::from_index(child),
            VertexId::from_index(parent),
            prob(&mut pi),
        )
        .unwrap();
    }
    for &(u, v) in &spec.chords {
        let (u, v) = (u % spec.n, v % spec.n);
        if u != v && !b.has_edge(VertexId::from_index(u), VertexId::from_index(v)) {
            b.add_edge(
                VertexId::from_index(u),
                VertexId::from_index(v),
                prob(&mut pi),
            )
            .unwrap();
        }
    }
    b.build()
}

/// Inserts all edges in a spec-driven valid order, validating every step.
fn build_tree(g: &ProbabilisticGraph, query: VertexId, spec: &GraphSpec) -> FTree {
    let mut tree = FTree::new(g, query);
    let mut provider = SamplingProvider::new(EstimatorConfig::exact(), 0);
    let mut remaining: Vec<EdgeId> = g.edge_ids().collect();
    let mut step = 0usize;
    while !remaining.is_empty() {
        // Deterministic pseudo-shuffle: rotate by the next order seed.
        let insertable: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, &e)| {
                let (a, b) = g.endpoints(e);
                tree.contains_vertex(a) || tree.contains_vertex(b)
            })
            .map(|(i, _)| i)
            .collect();
        if insertable.is_empty() {
            break;
        }
        let pick = spec.order_seed[step % spec.order_seed.len()] % insertable.len();
        step += 1;
        let e = remaining.remove(insertable[pick]);
        tree.insert_edge(g, e, &mut provider).unwrap();
        tree.validate(g).expect("invariants after every insertion");
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: the F-tree with exact component estimation
    /// reproduces whole-graph enumeration exactly, whatever the graph and
    /// the insertion order.
    #[test]
    fn ftree_flow_is_exact(spec in graph_spec()) {
        let g = build(&spec);
        let query = VertexId(0);
        let tree = build_tree(&g, query, &spec);
        let ftree_flow = tree.expected_flow(&g, false);
        let exact = exact_expected_flow(
            &g, tree.selected_edges(), query, false, DEFAULT_ENUMERATION_CAP,
        ).unwrap();
        prop_assert!((ftree_flow - exact).abs() < 1e-9,
            "F-tree {} vs exact {}", ftree_flow, exact);
    }

    /// Per-vertex reach probabilities stay within [0, 1] and Q's is 1.
    #[test]
    fn reach_probabilities_are_probabilities(spec in graph_spec()) {
        let g = build(&spec);
        let query = VertexId(0);
        let tree = build_tree(&g, query, &spec);
        prop_assert_eq!(tree.reach_to_query(query), 1.0);
        for v in g.vertices() {
            let r = tree.reach_to_query(v);
            prop_assert!((0.0..=1.0).contains(&r), "reach {} out of range", r);
        }
    }

    /// Adding any edge never decreases flow (more edges = more paths), when
    /// estimates are exact.
    #[test]
    fn flow_is_monotone_in_edges(spec in graph_spec()) {
        let g = build(&spec);
        let query = VertexId(0);
        let mut tree = FTree::new(&g, query);
        let mut provider = SamplingProvider::new(EstimatorConfig::exact(), 0);
        let mut prev = 0.0;
        let mut remaining: Vec<EdgeId> = g.edge_ids().collect();
        let mut step = 0usize;
        loop {
            let insertable: Vec<usize> = remaining.iter().enumerate()
                .filter(|(_, &e)| {
                    let (a, b) = g.endpoints(e);
                    tree.contains_vertex(a) || tree.contains_vertex(b)
                })
                .map(|(i, _)| i)
                .collect();
            if insertable.is_empty() { break; }
            let pick = spec.order_seed[step % spec.order_seed.len()] % insertable.len();
            step += 1;
            let e = remaining.remove(insertable[pick]);
            tree.insert_edge(&g, e, &mut provider).unwrap();
            let flow = tree.expected_flow(&g, false);
            prop_assert!(flow + 1e-9 >= prev, "flow dropped from {} to {}", prev, flow);
            prev = flow;
        }
    }

    /// The edge partition invariant: components hold each selected edge
    /// exactly once (already enforced by validate(), asserted explicitly
    /// here as the property of record).
    #[test]
    fn components_partition_selected_edges(spec in graph_spec()) {
        let g = build(&spec);
        let tree = build_tree(&g, VertexId(0), &spec);
        let mut seen = std::collections::BTreeSet::new();
        for comp in tree.components() {
            for e in comp.edges() {
                prop_assert!(seen.insert(e), "edge {:?} in two components", e);
            }
        }
        prop_assert_eq!(seen.len(), tree.edge_count());
    }

    /// Probing an edge never mutates the tree, and committing afterwards
    /// matches the probe under exact estimation.
    #[test]
    fn probe_then_commit_consistency(spec in graph_spec()) {
        let g = build(&spec);
        let query = VertexId(0);
        let mut tree = FTree::new(&g, query);
        let mut provider = SamplingProvider::new(EstimatorConfig::exact(), 0);
        // Insert the spanning tree part only, then probe each chord.
        for e in g.edge_ids().take(spec.n - 1) {
            tree.insert_edge(&g, e, &mut provider).unwrap();
        }
        let base = tree.expected_flow(&g, false);
        let chords: Vec<EdgeId> = g.edge_ids().skip(spec.n - 1).collect();
        for e in chords {
            let before = tree.expected_flow(&g, false);
            let probe = tree.probe_edge(&g, e, base, false, 0.01, &mut provider).unwrap();
            prop_assert!((tree.expected_flow(&g, false) - before).abs() < 1e-12);
            let mut committed = tree.clone();
            committed.insert_edge(&g, e, &mut provider).unwrap();
            let commit_flow = committed.expected_flow(&g, false);
            prop_assert!((probe.flow - commit_flow).abs() < 1e-9,
                "probe {} vs commit {}", probe.flow, commit_flow);
        }
    }
}
