//! Failure injection: every user-facing error path across the crates, plus
//! robustness of the pipeline under degenerate inputs.

use flowmax::core::{
    exact_max_flow, greedy_select, Algorithm, CoreError, EstimatorConfig, FTree, GreedyConfig,
    SamplingProvider, Session,
};
use flowmax::graph::{
    exact_reachability, EdgeId, EdgeSubset, GraphBuilder, GraphError, Probability, VertexId, Weight,
};
use std::io::Cursor;

fn p(v: f64) -> Probability {
    Probability::new(v).unwrap()
}

#[test]
fn builder_rejects_all_invalid_inputs() {
    assert!(matches!(
        Probability::new(0.0),
        Err(GraphError::InvalidProbability(_))
    ));
    assert!(matches!(
        Probability::new(f64::NAN),
        Err(GraphError::InvalidProbability(_))
    ));
    assert!(matches!(
        Weight::new(-1.0),
        Err(GraphError::InvalidWeight(_))
    ));

    let mut b = GraphBuilder::new();
    let v = b.add_vertex(Weight::ONE);
    assert!(matches!(
        b.add_edge(v, v, p(0.5)),
        Err(GraphError::SelfLoop(_))
    ));
    assert!(matches!(
        b.add_edge(v, VertexId(100), p(0.5)),
        Err(GraphError::VertexOutOfBounds { .. })
    ));
}

#[test]
fn ftree_rejects_case_i_and_duplicates_without_corruption() {
    let mut b = GraphBuilder::new();
    b.add_vertices(4, Weight::ONE);
    b.add_edge(VertexId(0), VertexId(1), p(0.5)).unwrap();
    b.add_edge(VertexId(2), VertexId(3), p(0.5)).unwrap();
    let g = b.build();

    let mut tree = FTree::new(&g, VertexId(0));
    let mut provider = SamplingProvider::new(EstimatorConfig::exact(), 1);

    // Case I rejected, tree untouched.
    let err = tree.insert_edge(&g, EdgeId(1), &mut provider).unwrap_err();
    assert!(matches!(err, CoreError::DisconnectedEdge { .. }));
    assert_eq!(tree.edge_count(), 0);
    tree.validate(&g).unwrap();

    tree.insert_edge(&g, EdgeId(0), &mut provider).unwrap();
    let err = tree.insert_edge(&g, EdgeId(0), &mut provider).unwrap_err();
    assert_eq!(err, CoreError::EdgeAlreadySelected(EdgeId(0)));
    assert_eq!(tree.edge_count(), 1);
    tree.validate(&g).unwrap();
}

#[test]
fn solvers_handle_isolated_query_gracefully() {
    let mut b = GraphBuilder::new();
    b.add_vertices(3, Weight::ONE);
    b.add_edge(VertexId(1), VertexId(2), p(0.9)).unwrap();
    let g = b.build();
    let session = Session::new(&g).with_seed(1);
    for alg in Algorithm::all() {
        let r = session
            .query(VertexId(0))
            .unwrap()
            .algorithm(alg)
            .budget(5)
            .run()
            .unwrap();
        assert!(
            r.selected.is_empty(),
            "{}: selected from nothing",
            alg.name()
        );
        assert_eq!(r.flow, 0.0, "{}", alg.name());
    }
}

#[test]
fn solvers_handle_single_vertex_graph() {
    let mut b = GraphBuilder::new();
    b.add_vertex(Weight::new(7.0).unwrap());
    let g = b.build();
    let session = Session::new(&g).with_seed(1);
    let r = session
        .query(VertexId(0))
        .unwrap()
        .algorithm(Algorithm::FtM)
        .budget(3)
        .run()
        .unwrap();
    assert!(r.selected.is_empty());
    assert_eq!(r.flow, 0.0);
    let r = session
        .query(VertexId(0))
        .unwrap()
        .algorithm(Algorithm::Dijkstra)
        .budget(3)
        .include_query(true)
        .run()
        .unwrap();
    assert_eq!(r.flow, 7.0, "query's own weight with include_query");
}

#[test]
fn session_rejects_invalid_queries_with_typed_errors() {
    let mut b = GraphBuilder::new();
    b.add_vertices(2, Weight::ONE);
    b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap();
    let g = b.build();
    let session = Session::new(&g);

    let err = session.query(VertexId(5)).unwrap_err();
    assert!(matches!(
        err,
        CoreError::QueryOutOfBounds {
            query: VertexId(5),
            vertex_count: 2
        }
    ));
    assert!(err.to_string().contains("out of bounds"));

    let err = session.query(VertexId(0)).unwrap().run().unwrap_err();
    assert_eq!(err, CoreError::EmptyBudget);

    let err = session
        .query(VertexId(0))
        .unwrap()
        .budget(1)
        .samples(0)
        .run()
        .unwrap_err();
    assert_eq!(err, CoreError::ZeroSamples);

    let err = "FT+NOPE".parse::<Algorithm>().unwrap_err();
    assert_eq!(err, CoreError::UnknownAlgorithm("FT+NOPE".into()));
    assert_eq!("ft+m+ci+ds".parse::<Algorithm>(), Ok(Algorithm::FtMCiDs));
}

#[test]
fn zero_budget_is_a_no_op() {
    let mut b = GraphBuilder::new();
    b.add_vertices(2, Weight::ONE);
    b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap();
    let g = b.build();
    let out = greedy_select(&g, VertexId(0), &GreedyConfig::ft(0, 1));
    assert!(out.selected.is_empty());
    assert_eq!(out.metrics.probes, 0);
}

#[test]
fn all_certain_edges_need_no_sampling_in_greedy_with_exact_cap() {
    // p = 1 everywhere: even cycles are deterministic; exact estimation via
    // hybrid cap must never fall back to sampling (0 uncertain edges).
    let mut b = GraphBuilder::new();
    b.add_vertices(4, Weight::ONE);
    for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)] {
        b.add_edge(VertexId(u), VertexId(v), Probability::ONE)
            .unwrap();
    }
    let g = b.build();
    let mut cfg = GreedyConfig::ft(5, 1);
    cfg.exact_edge_cap = 4;
    let out = greedy_select(&g, VertexId(0), &cfg);
    assert_eq!(out.metrics.components_sampled, 0);
    assert!(
        (out.final_flow - 3.0).abs() < 1e-12,
        "all three vertices certain"
    );
}

#[test]
fn exact_solver_enforces_limits() {
    let mut b = GraphBuilder::new();
    b.add_vertices(30, Weight::ONE);
    for i in 0..25u32 {
        b.add_edge(VertexId(i), VertexId(i + 1), p(0.5)).unwrap();
    }
    let g = b.build();
    assert!(exact_max_flow(&g, VertexId(0), 3, false).is_err());
}

#[test]
fn enumeration_cap_propagates() {
    let mut b = GraphBuilder::new();
    b.add_vertices(30, Weight::ONE);
    for i in 0..29u32 {
        b.add_edge(VertexId(i), VertexId(i + 1), p(0.5)).unwrap();
    }
    let g = b.build();
    let err = exact_reachability(&g, &EdgeSubset::full(&g), VertexId(0), 24).unwrap_err();
    assert!(matches!(err, GraphError::TooManyEdgesForEnumeration { .. }));
}

#[test]
fn graph_io_failures_are_typed() {
    use flowmax::graph::io::read_text;
    for bad in [
        "wrong header\n",
        "flowmax-graph v1\nnot-numbers\n",
        "flowmax-graph v1\n2 1\n1\nnope\n0 1 0.5\n",
        "flowmax-graph v1\n2 1\n1\n1\n0 0 0.5\n", // self loop
        "flowmax-graph v1\n1 0\n-3\n",            // negative weight
    ] {
        assert!(read_text(Cursor::new(bad)).is_err(), "accepted {bad:?}");
    }
}

#[test]
fn loader_failures_are_typed() {
    use flowmax::datasets::{load_edge_list, ProbabilityModel, WeightModel};
    let err = load_edge_list(
        Cursor::new("1 2\nthree four\n"),
        ProbabilityModel::Constant(0.5),
        WeightModel::unit(),
        0,
    )
    .unwrap_err();
    assert!(matches!(err, GraphError::Parse { line: 2, .. }));
}

#[test]
fn probe_never_mutates_even_on_error() {
    let mut b = GraphBuilder::new();
    b.add_vertices(4, Weight::ONE);
    b.add_edge(VertexId(0), VertexId(1), p(0.5)).unwrap();
    b.add_edge(VertexId(2), VertexId(3), p(0.5)).unwrap();
    let g = b.build();
    let mut tree = FTree::new(&g, VertexId(0));
    let mut provider = SamplingProvider::new(EstimatorConfig::exact(), 1);
    tree.insert_edge(&g, EdgeId(0), &mut provider).unwrap();
    let before = tree.expected_flow(&g, false);
    let _ = tree.probe_edge(&g, EdgeId(1), before, false, 0.01, &mut provider);
    assert_eq!(tree.edge_count(), 1);
    assert_eq!(tree.expected_flow(&g, false), before);
    tree.validate(&g).unwrap();
}

/// A worker panic mid-job must fail that job only (satellite of the
/// persistent-pool PR): the panic surfaces on the submitting thread — no
/// hang, no process abort — the pool's threads survive, and the very next
/// estimation through the same process-wide pool is bit-identical to one
/// from before the fault.
#[test]
fn worker_panic_fails_the_job_but_the_shared_pool_stays_serviceable() {
    use flowmax::datasets::{suggest_query, ErdosConfig};
    use flowmax::sampling::WorkerPool;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let g = ErdosConfig::paper(100, 5.0).generate(47);
    let q = suggest_query(&g);
    let solve = || {
        Session::new(&g)
            .with_threads(8)
            .with_seed(11)
            .query(q)
            .unwrap()
            .budget(4)
            .samples(150)
            .run()
            .unwrap()
    };
    let before = solve();

    // Kill jobs on the same shared pool the session just used, three times
    // over: each must fail loudly without taking a worker thread with it.
    let chunk_ranges = || (0..8usize).map(|j| j * 4..(j + 1) * 4).collect::<Vec<_>>();
    for round in 0..3 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            WorkerPool::global().run(chunk_ranges(), |j, range| {
                if j == 5 {
                    panic!("injected fault in round {round}");
                }
                range.sum::<usize>()
            })
        }));
        assert!(result.is_err(), "round {round}: injected panic vanished");
    }

    // Healthy jobs still run on the surviving workers...
    let sums = WorkerPool::global().run(chunk_ranges(), |_, range| range.sum::<usize>());
    assert_eq!(sums.len(), 8);
    // ...and a real estimation through the same pool is bit-identical to
    // the pre-fault run.
    let after = solve();
    assert_eq!(before.selected, after.selected);
    assert_eq!(before.flow, after.flow);
    assert_eq!(before.algorithm_flow, after.algorithm_flow);
}

/// Seeded chaos for the serving layer, compiled only under
/// `--features faults`: injected admission rejections, batch panics, dead
/// worker slots, overload storms, and expired deadlines. The invariants
/// under every fault: the dispatcher never dies, every ticket ends in
/// exactly one terminal event, and degraded answers are bit-identical to
/// the same-seed full run's prefix. Tests serialize on a gate because the
/// failpoint registry is process-global.
#[cfg(feature = "faults")]
mod chaos {
    use super::p;
    use flowmax::core::{CoreError, FlowServer, QueryParams, ServeConfig, ServeError, ServeEvent};
    use flowmax::graph::{GraphBuilder, ProbabilisticGraph, VertexId, Weight};
    use flowmax_faults::{self as faults, FailPlan};
    use std::sync::{Mutex, MutexGuard, PoisonError};
    use std::time::Duration;

    static GATE: Mutex<()> = Mutex::new(());

    /// Arms `plan` for the guard's lifetime, then disarms — even when the
    /// test body panics through it.
    struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

    fn arm(plan: FailPlan) -> Armed {
        let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        faults::install(plan);
        Armed(gate)
    }

    impl Drop for Armed {
        fn drop(&mut self) {
            faults::clear();
        }
    }

    fn diamond() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(5, Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p(0.8)).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p(0.7)).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p(0.6)).unwrap();
        b.add_edge(VertexId(3), VertexId(4), p(0.5)).unwrap();
        b.build()
    }

    fn params(vertex: u32, budget: usize) -> QueryParams {
        let mut params = QueryParams::new(VertexId(vertex), budget);
        params.samples = 200;
        params
    }

    /// An injected admission fault rejects exactly the scheduled arrival
    /// with a live retry hint; admissions before and after it sail through
    /// and complete.
    #[test]
    fn injected_admission_fault_rejects_one_arrival_and_recovers() {
        let _armed = arm(FailPlan::new(3).fail_key_nth("serve/admit", 1, &[0]));
        let server = FlowServer::new(ServeConfig::default());
        let fp = server.load_graph(diamond());

        let first = server
            .submit(fp, params(0, 2))
            .expect("admission 0 is clean");
        let rejected = server.submit(fp, params(1, 2));
        assert!(
            matches!(rejected, Err(ServeError::Overloaded { .. })),
            "admission 1 must hit the injected fault: {rejected:?}"
        );
        let third = server
            .submit(fp, params(2, 2))
            .expect("admission 2 is clean");

        first.wait().expect("unfaulted query completes");
        third
            .wait()
            .expect("the server keeps serving after the fault");
        assert_eq!(server.stats().rejected, 1);
        assert_eq!(server.stats().completed, 2);
    }

    /// A panic injected into the batch executor fails every ticket in that
    /// batch with a typed `WorkerPanicked` — and the dispatcher survives to
    /// run the next, bit-identical to an unfaulted run.
    #[test]
    fn injected_batch_panic_fails_the_batch_but_not_the_dispatcher() {
        let g = diamond();
        let reference = {
            let server = FlowServer::new(ServeConfig::default());
            let fp = server.load_graph(g.clone());
            server.submit(fp, params(0, 3)).unwrap().wait().unwrap()
        };

        let _armed = arm(FailPlan::new(9).fail_key_nth("serve/batch", 0, &[0]));
        let server = FlowServer::new(ServeConfig {
            start_paused: true,
            ..ServeConfig::default()
        });
        let fp = server.load_graph(g);
        let doomed_a = server.submit(fp, params(0, 3)).unwrap();
        let doomed_b = server.submit(fp, params(0, 3)).unwrap();
        server.resume();
        for doomed in [doomed_a, doomed_b] {
            match doomed.wait() {
                Err(CoreError::WorkerPanicked(msg)) => {
                    assert!(
                        faults::is_fault_panic(&msg),
                        "expected the tagged fault panic, got: {msg}"
                    );
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }

        // Batch 0 is burnt; batch 1 is unfaulted and must match the
        // reference bit for bit.
        let after = server.submit(fp, params(0, 3)).unwrap().wait().unwrap();
        assert_eq!(after.selected, reference.selected);
        assert_eq!(after.flow, reference.flow);
        assert_eq!(server.stats().batches, 2);
    }

    // The dead-worker-slot-through-the-server chaos test lives in its own
    // binary (`tests/serve_pool_chaos.rs`): the `pool/worker` site fires
    // on the process-global WorkerPool, which other tests in *this*
    // binary use concurrently — arming it here would bleed faults into
    // their jobs.

    /// An overload storm against a tiny queue: rejections carry retry
    /// hints that scale with the live queue depth, every accepted ticket
    /// still reaches a terminal event, and nothing deadlocks.
    #[test]
    fn overload_storm_rejects_with_scaled_hints_and_drains_cleanly() {
        // No faults armed — the storm itself is the chaos — but hold the
        // gate so a concurrent armed test can't bleed into this server.
        let _armed = arm(FailPlan::new(0));
        let server = FlowServer::new(ServeConfig {
            queue_capacity: 3,
            coalesce_max: 2,
            retry_after: Duration::from_millis(5),
            start_paused: true,
            ..ServeConfig::default()
        });
        let fp = server.load_graph(diamond());

        let mut accepted = Vec::new();
        let mut hints = Vec::new();
        for i in 0..50u32 {
            match server.submit(fp, params(i % 5, 1)) {
                Ok(ticket) => accepted.push(ticket),
                Err(ServeError::Overloaded { retry_after }) => hints.push(retry_after),
                Err(other) => panic!("only Overloaded is expected here: {other:?}"),
            }
        }
        assert_eq!(accepted.len(), 3, "capacity admits exactly three");
        assert_eq!(hints.len(), 47);
        // A full queue of 3 with coalesce 2 needs two more batches:
        // ceil((3 + 1) / 2) = 2 base units.
        assert!(hints.iter().all(|&h| h == Duration::from_millis(10)));

        server.resume();
        for ticket in accepted {
            ticket.wait().expect("every accepted ticket must terminate");
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.rejected, 47);
        assert_eq!(stats.queued, 0, "the storm drains completely");
    }

    /// Deadlines that expire while queued degrade instead of failing: the
    /// event stream ends in `Degraded`, and the committed prefix is
    /// bit-identical to the same-seed full run.
    #[test]
    fn expired_deadlines_degrade_to_exact_prefixes_under_load() {
        let _armed = arm(FailPlan::new(0));
        let server = FlowServer::new(ServeConfig {
            start_paused: true,
            ..ServeConfig::default()
        });
        let fp = server.load_graph(diamond());

        let full = server.submit(fp, params(0, 3)).unwrap();
        let doomed = server.submit(fp, params(0, 3).with_deadline_ms(0)).unwrap();
        server.resume();

        let full = full.wait().expect("the undeadlined twin completes");
        let terminal;
        loop {
            match doomed.next_event().expect("stream must terminate") {
                ServeEvent::Step(_) => continue,
                other => {
                    terminal = Some(other);
                    break;
                }
            }
        }
        match terminal {
            Some(ServeEvent::Degraded {
                steps_done,
                budget,
                result,
            }) => {
                assert_eq!(budget, 3);
                assert_eq!(steps_done, result.selected.len());
                assert!(steps_done < budget, "a 0ms deadline cannot finish");
                assert_eq!(
                    result.selected,
                    full.selected[..steps_done],
                    "degraded answers are the full run's prefix, bit for bit"
                );
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
    }
}

#[test]
fn extreme_probabilities_are_handled() {
    // Mix of near-zero and certain probabilities must not under/overflow.
    let mut b = GraphBuilder::new();
    b.add_vertices(4, Weight::new(1000.0).unwrap());
    b.add_edge(VertexId(0), VertexId(1), p(1e-12)).unwrap();
    b.add_edge(VertexId(1), VertexId(2), Probability::ONE)
        .unwrap();
    b.add_edge(VertexId(2), VertexId(3), p(1e-12)).unwrap();
    let g = b.build();
    let mut cfg = GreedyConfig::ft(3, 1);
    cfg.exact_edge_cap = 10;
    let out = greedy_select(&g, VertexId(0), &cfg);
    assert_eq!(out.selected.len(), 3);
    assert!(out.final_flow.is_finite());
    assert!(
        out.final_flow > 0.0 && out.final_flow < 1.0,
        "flow {}",
        out.final_flow
    );
}
