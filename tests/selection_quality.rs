//! Selection quality: the greedy heuristics against the brute-force optimum
//! (Theorem 1 makes optimality NP-hard; §7 claims "high quality solutions").

use flowmax::core::{exact_max_flow, greedy_select, Algorithm, GreedyConfig, Session};
use flowmax::graph::{GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight};
use flowmax::sampling::SeedSequence;
use rand::seq::SliceRandom;
use rand::Rng;

fn random_graph(n: usize, m: usize, seed: u64) -> ProbabilisticGraph {
    let mut rng = SeedSequence::new(seed).rng(1);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(Weight::new(rng.gen_range(0..10) as f64).unwrap());
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let prob = Probability::new(rng.gen_range(0.1..=1.0)).unwrap();
        b.add_edge(VertexId(order[i]), VertexId(parent), prob)
            .unwrap();
    }
    let mut added = n - 1;
    let mut guard = 0;
    while added < m && guard < 500 {
        guard += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && !b.has_edge(VertexId(u), VertexId(v)) {
            b.add_edge(
                VertexId(u),
                VertexId(v),
                Probability::new(rng.gen_range(0.1..=1.0)).unwrap(),
            )
            .unwrap();
            added += 1;
        }
    }
    b.build()
}

/// Evaluates a selection exactly (all test graphs are small).
fn exact_flow_of(g: &ProbabilisticGraph, query: VertexId, edges: &[flowmax::graph::EdgeId]) -> f64 {
    let subset = flowmax::graph::EdgeSubset::from_edges(g.edge_count(), edges.iter().copied());
    flowmax::graph::exact_expected_flow(g, &subset, query, false, 24).unwrap()
}

#[test]
fn greedy_reaches_most_of_the_optimum() {
    let mut total_ratio = 0.0;
    let mut runs = 0;
    for seed in 0..12u64 {
        let g = random_graph(7, 11, seed);
        let query = VertexId(0);
        let k = 4;
        let optimum = exact_max_flow(&g, query, k, false).unwrap();
        if optimum.flow <= 0.0 {
            continue;
        }
        let mut cfg = GreedyConfig::ft(k, seed);
        cfg.exact_edge_cap = 20; // noise-free greedy: isolates heuristic loss
        let greedy = greedy_select(&g, query, &cfg);
        let greedy_flow = exact_flow_of(&g, query, &greedy.selected);
        let ratio = greedy_flow / optimum.flow;
        // Myopic greedy can be arbitrarily bad on knapsack-trap instances
        // (a worthless chain guarding a heavy vertex, Theorem 1); what the
        // paper claims — and we check — is high *typical* quality.
        assert!(
            ratio > 0.4,
            "seed {seed}: greedy {greedy_flow} vs optimum {} (ratio {ratio})",
            optimum.flow
        );
        total_ratio += ratio;
        runs += 1;
    }
    assert!(runs >= 8, "most instances must be evaluable");
    assert!(
        total_ratio / runs as f64 > 0.85,
        "mean quality ratio {} too low",
        total_ratio / runs as f64
    );
}

#[test]
fn heuristics_lose_little_quality() {
    for seed in [1u64, 5, 9] {
        let g = random_graph(8, 13, seed);
        let query = VertexId(0);
        let k = 5;
        let base = greedy_select(&g, query, &GreedyConfig::ft(k, seed));
        let full = greedy_select(
            &g,
            query,
            &GreedyConfig::ft(k, seed).with_memo().with_ci().with_ds(),
        );
        let base_flow = exact_flow_of(&g, query, &base.selected);
        let full_flow = exact_flow_of(&g, query, &full.selected);
        assert!(
            full_flow > 0.75 * base_flow,
            "seed {seed}: heuristics dropped too much flow ({full_flow} vs {base_flow})"
        );
    }
}

#[test]
fn greedy_dominates_dijkstra_with_cycles_available() {
    // A graph designed to need a backup edge: long chain to heavy vertices,
    // where the spanning tree wastes budget on fragile deep paths.
    let mut b = GraphBuilder::new();
    let q = b.add_vertex(Weight::ZERO);
    let heavy: Vec<VertexId> = (0..3)
        .map(|_| b.add_vertex(Weight::new(50.0).unwrap()))
        .collect();
    let light: Vec<VertexId> = (0..4).map(|_| b.add_vertex(Weight::ONE)).collect();
    let p = |v| Probability::new(v).unwrap();
    // Heavy triangle near Q, low-probability edges (cycles pay off).
    b.add_edge(q, heavy[0], p(0.5)).unwrap();
    b.add_edge(q, heavy[1], p(0.5)).unwrap();
    b.add_edge(heavy[0], heavy[1], p(0.5)).unwrap();
    b.add_edge(heavy[0], heavy[2], p(0.5)).unwrap();
    b.add_edge(heavy[1], heavy[2], p(0.5)).unwrap();
    // A high-probability but worthless chain the spanning tree will love.
    b.add_edge(q, light[0], p(0.99)).unwrap();
    b.add_edge(light[0], light[1], p(0.99)).unwrap();
    b.add_edge(light[1], light[2], p(0.99)).unwrap();
    b.add_edge(light[2], light[3], p(0.99)).unwrap();
    let g = b.build();

    let k = 5;
    let session = Session::new(&g).with_seed(3);
    let run = |alg| {
        session
            .query(q)
            .unwrap()
            .algorithm(alg)
            .budget(k)
            .run()
            .unwrap()
    };
    let ft = run(Algorithm::FtM);
    let dj = run(Algorithm::Dijkstra);
    assert!(
        ft.flow > dj.flow * 1.3,
        "FT ({}) must clearly beat Dijkstra ({}) when cycles matter",
        ft.flow,
        dj.flow
    );
}

#[test]
fn larger_budget_never_hurts() {
    let g = random_graph(9, 14, 4);
    let query = VertexId(0);
    let mut cfg = GreedyConfig::ft(0, 4);
    cfg.exact_edge_cap = 20;
    let mut prev = 0.0;
    for k in [1usize, 2, 4, 6, 9] {
        cfg.budget = k;
        let out = greedy_select(&g, query, &cfg);
        let flow = exact_flow_of(&g, query, &out.selected);
        assert!(flow + 1e-9 >= prev, "k={k}: flow {flow} < previous {prev}");
        prev = flow;
    }
}
