//! The central correctness property of the reproduction: with exact
//! per-component estimation, the F-tree's expected flow equals whole-graph
//! possible-world enumeration **bit-for-bit**, for any graph and any valid
//! insertion order — because the decomposition at articulation vertices is
//! exact (Theorem 2 + independence of edge-disjoint subgraphs).

use flowmax::core::{EstimatorConfig, FTree, SamplingProvider};
use flowmax::graph::{
    exact_expected_flow, EdgeId, GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight,
    DEFAULT_ENUMERATION_CAP,
};
use flowmax::sampling::SeedSequence;
use rand::seq::SliceRandom;
use rand::Rng;

/// Random connected-ish graph with `n` vertices and `m` edges.
fn random_graph(n: usize, m: usize, seed: u64) -> ProbabilisticGraph {
    let mut rng = SeedSequence::new(seed).rng(1);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(Weight::new(rng.gen_range(0..10) as f64).unwrap());
    }
    // Random spanning tree first (guarantees insertability), then chords.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let prob = Probability::new(rng.gen_range(0.05..=1.0)).unwrap();
        b.add_edge(VertexId(order[i]), VertexId(parent), prob)
            .unwrap();
    }
    let mut added = n - 1;
    let mut guard = 0;
    while added < m && guard < 1000 {
        guard += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && !b.has_edge(VertexId(u), VertexId(v)) {
            let prob = Probability::new(rng.gen_range(0.05..=1.0)).unwrap();
            b.add_edge(VertexId(u), VertexId(v), prob).unwrap();
            added += 1;
        }
    }
    b.build()
}

/// Inserts all edges of `g` into an F-tree in a random *valid* order
/// (each inserted edge touches the connected part), validating after every
/// step, and returns the final tree.
fn build_random_order(g: &ProbabilisticGraph, query: VertexId, seed: u64) -> FTree {
    let mut rng = SeedSequence::new(seed).rng(2);
    let mut tree = FTree::new(g, query);
    let mut provider = SamplingProvider::new(EstimatorConfig::exact(), seed);
    let mut remaining: Vec<EdgeId> = g.edge_ids().collect();
    remaining.shuffle(&mut rng);
    while !remaining.is_empty() {
        let pos = remaining.iter().position(|&e| {
            let (a, b) = g.endpoints(e);
            tree.contains_vertex(a) || tree.contains_vertex(b)
        });
        let Some(pos) = pos else { break }; // disconnected leftovers
        let e = remaining.remove(pos);
        tree.insert_edge(g, e, &mut provider).unwrap();
        tree.validate(g)
            .unwrap_or_else(|err| panic!("seed {seed}, edge {e:?}: {err}"));
    }
    tree
}

#[test]
fn ftree_flow_equals_enumeration_across_many_random_graphs() {
    for seed in 0..30u64 {
        let n = 5 + (seed as usize % 6);
        let m = (n - 1) + (seed as usize % 7);
        let g = random_graph(n, m, seed);
        let query = VertexId((seed % n as u64) as u32);
        let tree = build_random_order(&g, query, seed);
        let ftree_flow = tree.expected_flow(&g, false);
        let exact = exact_expected_flow(
            &g,
            tree.selected_edges(),
            query,
            false,
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        assert!(
            (ftree_flow - exact).abs() < 1e-9,
            "seed {seed}: F-tree {ftree_flow} vs exact {exact}"
        );
    }
}

#[test]
fn insertion_order_does_not_change_flow() {
    let g = random_graph(8, 12, 99);
    let query = VertexId(0);
    let mut flows = Vec::new();
    for order_seed in 0..10u64 {
        let tree = build_random_order(&g, query, 1000 + order_seed);
        if tree.edge_count() == g.edge_count() {
            flows.push(tree.expected_flow(&g, false));
        }
    }
    assert!(flows.len() >= 2, "need at least two full builds");
    for w in flows.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-9,
            "flow must be order-independent: {flows:?}"
        );
    }
}

#[test]
fn per_vertex_reach_matches_exact_reachability() {
    for seed in [3u64, 17, 42] {
        let g = random_graph(7, 10, seed);
        let query = VertexId(1);
        let tree = build_random_order(&g, query, seed);
        let exact = flowmax::graph::exact_reachability(
            &g,
            tree.selected_edges(),
            query,
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        for v in g.vertices() {
            let r = tree.reach_to_query(v);
            assert!(
                (r - exact[v.index()]).abs() < 1e-9,
                "seed {seed} vertex {v:?}: {r} vs {}",
                exact[v.index()]
            );
        }
    }
}

#[test]
fn monte_carlo_ftree_converges_to_exact_flow() {
    let g = random_graph(8, 12, 7);
    let query = VertexId(0);
    // Build with plentiful sampling instead of exact enumeration.
    let mut tree = FTree::new(&g, query);
    let mut provider = SamplingProvider::new(EstimatorConfig::monte_carlo(20_000), 5);
    let mut remaining: Vec<EdgeId> = g.edge_ids().collect();
    while !remaining.is_empty() {
        let pos = remaining.iter().position(|&e| {
            let (a, b) = g.endpoints(e);
            tree.contains_vertex(a) || tree.contains_vertex(b)
        });
        let Some(pos) = pos else { break };
        let e = remaining.remove(pos);
        tree.insert_edge(&g, e, &mut provider).unwrap();
    }
    let sampled_flow = tree.expected_flow(&g, false);
    let exact = exact_expected_flow(
        &g,
        tree.selected_edges(),
        query,
        false,
        DEFAULT_ENUMERATION_CAP,
    )
    .unwrap();
    let rel = (sampled_flow - exact).abs() / exact.max(1e-9);
    assert!(
        rel < 0.03,
        "sampled {sampled_flow} vs exact {exact} (rel err {rel})"
    );
}

#[test]
fn weights_scale_flow_linearly() {
    // Doubling all weights doubles the flow: linearity of expectation.
    let mut rng = SeedSequence::new(11).rng(0);
    let mut b1 = GraphBuilder::new();
    let mut b2 = GraphBuilder::new();
    for _ in 0..6 {
        let w = rng.gen_range(1..10) as f64;
        b1.add_vertex(Weight::new(w).unwrap());
        b2.add_vertex(Weight::new(2.0 * w).unwrap());
    }
    let edges = [(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)];
    for &(u, v) in &edges {
        let p = Probability::new(rng.gen_range(0.1..1.0)).unwrap();
        b1.add_edge(VertexId(u), VertexId(v), p).unwrap();
        b2.add_edge(VertexId(u), VertexId(v), p).unwrap();
    }
    let (g1, g2) = (b1.build(), b2.build());
    let t1 = build_random_order(&g1, VertexId(0), 1);
    let t2 = build_random_order(&g2, VertexId(0), 1);
    let (f1, f2) = (t1.expected_flow(&g1, false), t2.expected_flow(&g2, false));
    assert!((f2 - 2.0 * f1).abs() < 1e-9, "{f2} vs 2×{f1}");
}
