//! The session API's contract tests: the anytime prefix property (one run
//! at budget `K` answers every budget `≤ K` exactly as independent runs
//! would), `run_many` bit-identity at every thread count, streaming step
//! events, and the legacy `solve` shim's bit-compatibility.

use flowmax::core::{Algorithm, SelectionStep, Session, SolveRun};
use flowmax::datasets::{suggest_query, ErdosConfig, PartitionedConfig};
use flowmax::graph::{EdgeId, ProbabilisticGraph, VertexId};

fn erdos(seed: u64) -> ProbabilisticGraph {
    ErdosConfig::paper(120, 5.0).generate(seed)
}

/// Runs `algorithm` at `budget` in a fresh session (same seed every time).
fn run_at(
    g: &ProbabilisticGraph,
    q: VertexId,
    algorithm: Algorithm,
    budget: usize,
    exact_cap: usize,
) -> SolveRun<'_> {
    Session::new(g)
        .with_seed(9)
        .query(q)
        .unwrap()
        .algorithm(algorithm)
        .budget(budget)
        .samples(200)
        .exact_edge_cap(exact_cap)
        .run()
        .unwrap()
}

/// The anytime prefix property, for both noise-free (exact component
/// estimation) and sampled configs: the selection at budget `k` is a
/// prefix of the selection at budget `k + 1`, and `flow_at(j)` of the
/// budget-`K` run is bit-identical to the `flow` of an independent run at
/// budget `j`, for every `j ≤ K`.
#[test]
fn anytime_prefix_property_across_budgets() {
    let g = erdos(31);
    let q = suggest_query(&g);
    let k = 6;
    for (algorithm, exact_cap) in [
        (Algorithm::FtM, 24),    // deterministic: exact component estimates
        (Algorithm::FtM, 0),     // paper setting: pure Monte-Carlo
        (Algorithm::FtMCiDs, 0), // full heuristic stack, racing engine
        (Algorithm::Dijkstra, 0),
        (Algorithm::Naive, 0),
    ] {
        let full = run_at(&g, q, algorithm, k, exact_cap);
        assert_eq!(full.selected.len(), k, "{algorithm:?} cap={exact_cap}");
        for j in 1..=k {
            let partial = run_at(&g, q, algorithm, j, exact_cap);
            assert_eq!(
                partial.selected,
                full.selection_at(j),
                "{algorithm:?} cap={exact_cap}: budget-{j} selection is not a prefix"
            );
            assert_eq!(
                partial.flow,
                full.flow_at(j),
                "{algorithm:?} cap={exact_cap}: flow_at({j}) differs from an independent run"
            );
        }
        // flow_at is monotone in budget under exact evaluation-free noise
        // margins: larger prefixes never lose flow (tiny slack for the
        // sampled evaluator's per-prefix re-estimation).
        for j in 1..k {
            assert!(
                full.flow_at(j + 1) >= full.flow_at(j) - 0.05 * full.flow.abs().max(1.0),
                "{algorithm:?}: flow_at collapsed between budgets {j} and {}",
                j + 1
            );
        }
    }
}

/// One step per selected edge, streamed in commit order, with cumulative
/// flows matching the run's own final estimate.
#[test]
fn steps_stream_in_commit_order_with_consistent_flows() {
    let g = erdos(33);
    let q = suggest_query(&g);
    let session = Session::new(&g).with_seed(5);
    let mut streamed: Vec<SelectionStep> = Vec::new();
    let run = session
        .query(q)
        .unwrap()
        .algorithm(Algorithm::FtMCiDs)
        .budget(8)
        .samples(200)
        .run_with(&mut |s: &SelectionStep| streamed.push(*s))
        .unwrap();
    assert_eq!(streamed.len(), run.selected.len());
    assert_eq!(run.steps, streamed);
    let mut gain_sum = 0.0;
    for (i, step) in run.steps.iter().enumerate() {
        assert_eq!(step.iteration, i);
        assert_eq!(step.edge, run.selected[i]);
        assert!(step.pool >= 1);
        gain_sum += step.gain;
    }
    let last = run.steps.last().unwrap();
    assert_eq!(last.flow, run.algorithm_flow);
    assert!(
        (gain_sum - run.algorithm_flow).abs() < 1e-6 * run.algorithm_flow.abs().max(1.0),
        "marginal gains must telescope to the final flow ({gain_sum} vs {})",
        run.algorithm_flow
    );
    // An unobserved run is bit-identical and carries the same steps.
    let silent = session
        .query(q)
        .unwrap()
        .algorithm(Algorithm::FtMCiDs)
        .budget(8)
        .samples(200)
        .run()
        .unwrap();
    assert_eq!(silent.selected, run.selected);
    assert_eq!(silent.steps, run.steps);
    assert_eq!(silent.flow, run.flow);
}

/// `run_many` over repeated queries is bit-identical to per-query runs at
/// every thread count (the acceptance criterion for the batch mode).
#[test]
fn run_many_is_bit_identical_to_solo_runs_at_every_thread_count() {
    let g = PartitionedConfig::paper(150, 6).generate(13);
    let q = suggest_query(&g);
    // Reference: solo runs, single-threaded.
    let reference = Session::new(&g).with_threads(1).with_seed(21);
    let solo: Vec<_> = [Algorithm::FtMCiDs, Algorithm::FtM, Algorithm::FtMCiDs]
        .iter()
        .map(|&alg| {
            reference
                .query(q)
                .unwrap()
                .algorithm(alg)
                .budget(5)
                .samples(150)
                .run()
                .unwrap()
        })
        .collect();
    for threads in [1usize, 2, 8] {
        let session = Session::new(&g).with_threads(threads).with_seed(21);
        let specs: Vec<_> = [Algorithm::FtMCiDs, Algorithm::FtM, Algorithm::FtMCiDs]
            .iter()
            .map(|&alg| {
                session
                    .query(q)
                    .unwrap()
                    .algorithm(alg)
                    .budget(5)
                    .samples(150)
                    .spec()
            })
            .collect();
        let runs = session.run_many(&specs).unwrap();
        assert_eq!(runs.len(), solo.len());
        for (i, (batch, reference)) in runs.iter().zip(&solo).enumerate() {
            assert_eq!(batch.selected, reference.selected, "threads={threads} #{i}");
            assert_eq!(batch.flow, reference.flow, "threads={threads} #{i}");
            assert_eq!(
                batch.algorithm_flow, reference.algorithm_flow,
                "threads={threads} #{i}"
            );
            assert_eq!(batch.steps, reference.steps, "threads={threads} #{i}");
        }
        // Repeated identical specs agree with each other bit for bit.
        assert_eq!(runs[0].selected, runs[2].selected, "threads={threads}");
        assert_eq!(runs[0].flow, runs[2].flow, "threads={threads}");
    }
}

/// Satellite of the persistent-pool PR, at the session-API level: batches
/// must be bit-identical on a fresh process-wide pool, after the pool and
/// every worker's warm scratch arenas served 100 unrelated jobs, and at
/// thread counts 1 vs 8.
#[test]
fn warm_pool_and_thread_count_never_leak_into_run_many() {
    let g = erdos(41);
    let q = suggest_query(&g);
    let batch = |threads: usize| {
        let session = Session::new(&g).with_threads(threads).with_seed(17);
        let specs: Vec<_> = (1..=4)
            .map(|budget| {
                session
                    .query(q)
                    .unwrap()
                    .algorithm(Algorithm::FtMCiDs)
                    .budget(budget)
                    .samples(150)
                    .spec()
            })
            .collect();
        session
            .run_many(&specs)
            .unwrap()
            .into_iter()
            .map(|r| (r.selected.clone(), r.flow, r.algorithm_flow))
            .collect::<Vec<_>>()
    };
    let fresh = batch(8);

    // 100 unrelated jobs on a differently-shaped graph cycle the shared
    // pool's workers through foreign scratch shapes before the replay.
    let other = PartitionedConfig::paper(90, 5).generate(3);
    let oq = suggest_query(&other);
    let warm = Session::new(&other).with_threads(8).with_seed(77);
    let warmup: Vec<_> = (0..100)
        .map(|i| {
            warm.query(oq)
                .unwrap()
                .budget(1 + i % 3)
                .samples(80)
                .seed(i as u64)
                .spec()
        })
        .collect();
    assert_eq!(warm.run_many(&warmup).unwrap().len(), 100);

    assert_eq!(batch(8), fresh, "warm pool changed run_many results");
    assert_eq!(batch(1), fresh, "thread count leaked into results");
}

/// The deprecated `solve` shim returns the same selections (as a set — its
/// legacy output order is ascending edge ids for the F-tree algorithms),
/// flows, and metrics as the session API, for every algorithm.
#[test]
#[allow(deprecated)]
fn legacy_solve_shim_is_bit_identical_to_the_session() {
    use flowmax::core::{solve, SolverConfig};
    let g = erdos(35);
    let q = suggest_query(&g);
    let session = Session::new(&g).with_seed(3);
    for alg in Algorithm::all() {
        let mut cfg = SolverConfig::paper(alg, 6, 3);
        cfg.samples = 150;
        let legacy = solve(&g, q, &cfg);
        let run = session
            .query(q)
            .unwrap()
            .algorithm(alg)
            .budget(6)
            .samples(150)
            .run()
            .unwrap();
        let mut session_sorted: Vec<EdgeId> = run.selected.clone();
        session_sorted.sort_unstable();
        let mut legacy_sorted = legacy.selected.clone();
        legacy_sorted.sort_unstable();
        assert_eq!(legacy_sorted, session_sorted, "{}", alg.name());
        assert_eq!(legacy.flow, run.flow, "{}", alg.name());
        assert_eq!(legacy.algorithm_flow, run.algorithm_flow, "{}", alg.name());
        assert_eq!(legacy.metrics, run.metrics, "{}", alg.name());
    }
}
