//! Property-based pinning of the commutative component fingerprint.
//!
//! [`ComponentGraph::fingerprint`] replaced a sort-based identity key with
//! a commutative running hash (articulation term + an order-independent sum
//! of salted edge terms) so the §6.2 memo and the racing engine's
//! per-component seed streams get O(1) keys. These tests pin it to the
//! sort-based reference's *equivalence classes*: over a corpus of
//! components collected from random apply/rollback/commit interleavings,
//! two snapshots hash equal **iff** their `(articulation, sorted edge set)`
//! keys are equal — i.e. the hash is order-independent and collision-free
//! on everything the engine actually produces. The fingerprint is a pure
//! function of the component (no RNG, no thread state), so equal classes
//! here imply the memo/seed keys are identical at any `FLOWMAX_THREADS`;
//! the differential harness separately re-checks the end-to-end traces at
//! 1 and 8 threads.

use std::collections::HashMap;

use flowmax::core::{EstimatorConfig, FTree, ProbePlan, SamplingProvider};
use flowmax::graph::{EdgeId, GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight};
use flowmax::sampling::ComponentGraph;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GraphSpec {
    n: usize,
    tree_parents: Vec<usize>,
    chords: Vec<(usize, usize)>,
    probs: Vec<f64>,
    order_seed: Vec<usize>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (3usize..9).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..n, n - 1).prop_map(move |raw| {
            raw.iter()
                .enumerate()
                .map(|(i, &r)| r % (i + 1))
                .collect::<Vec<_>>()
        });
        let chords = proptest::collection::vec((0usize..n, 0usize..n), 0..6);
        let max_edges = (n - 1) + 6;
        let probs = proptest::collection::vec(0.05f64..=1.0, max_edges);
        let order = proptest::collection::vec(0usize..64, max_edges);
        (Just(n), tree, chords, probs, order).prop_map(
            |(n, tree_parents, chords, probs, order_seed)| GraphSpec {
                n,
                tree_parents,
                chords,
                probs,
                order_seed,
            },
        )
    })
}

fn build(spec: &GraphSpec) -> ProbabilisticGraph {
    let mut b = GraphBuilder::new();
    for _ in 0..spec.n {
        b.add_vertex(Weight::ONE);
    }
    let mut pi = 0usize;
    let mut prob = || {
        let p = spec.probs[pi % spec.probs.len()];
        pi += 1;
        Probability::new(p).unwrap()
    };
    for (i, &parent) in spec.tree_parents.iter().enumerate() {
        b.add_edge(
            VertexId::from_index(i + 1),
            VertexId::from_index(parent),
            prob(),
        )
        .unwrap();
    }
    for &(u, v) in &spec.chords {
        let (u, v) = (u % spec.n, v % spec.n);
        if u != v && !b.has_edge(VertexId::from_index(u), VertexId::from_index(v)) {
            b.add_edge(VertexId::from_index(u), VertexId::from_index(v), prob())
                .unwrap();
        }
    }
    b.build()
}

fn candidates(g: &ProbabilisticGraph, tree: &FTree) -> Vec<EdgeId> {
    g.edge_ids()
        .filter(|&e| {
            if tree.selected_edges().contains(e) {
                return false;
            }
            let (a, b) = g.endpoints(e);
            tree.contains_vertex(a) || tree.contains_vertex(b)
        })
        .collect()
}

/// The sort-based reference identity the commutative hash replaced.
fn sort_key(snapshot: &ComponentGraph) -> (u32, Vec<EdgeId>) {
    let mut edges = snapshot.global_edges().to_vec();
    edges.sort_unstable();
    (snapshot.articulation().0, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Corpus property: across every component snapshot produced by random
    /// apply/rollback/commit interleavings, the commutative fingerprint
    /// induces exactly the sort-based key's equivalence classes — equal
    /// keys hash equal (order-independence), distinct keys hash distinct
    /// (collision-free on the corpus). Each snapshot is also rebuilt with
    /// its edge list reversed and rotated, which must not move it out of
    /// its class.
    #[test]
    fn fingerprint_matches_sort_based_equivalence_classes(spec in graph_spec()) {
        let g = build(&spec);
        let mut tree = FTree::new(&g, VertexId(0));
        let mut provider = SamplingProvider::new(EstimatorConfig::exact(), 0);
        let mut corpus: HashMap<(u32, Vec<EdgeId>), u64> = HashMap::new();
        let mut by_hash: HashMap<u64, (u32, Vec<EdgeId>)> = HashMap::new();
        let mut step = 0usize;
        let mut record = |snapshot: &ComponentGraph, step: usize| {
            let key = sort_key(snapshot);
            let fp = snapshot.fingerprint();
            // Same key → same hash, across however the edge list is ordered.
            if let Some(&seen) = corpus.get(&key) {
                prop_assert_eq!(seen, fp, "one component, two fingerprints: {:?}", key);
            }
            // Distinct keys → distinct hashes (no collisions on the corpus).
            if let Some(other) = by_hash.get(&fp) {
                prop_assert_eq!(other, &key, "fingerprint collision at {:#x}", fp);
            }
            // Order-independence, explicitly: reversed and rotated edge
            // orders rebuild to the same fingerprint.
            let mut permuted = snapshot.global_edges().to_vec();
            permuted.reverse();
            if !permuted.is_empty() {
                let mid = step % permuted.len();
                permuted.rotate_left(mid);
            }
            let rebuilt = ComponentGraph::build(&g, snapshot.articulation(), &permuted);
            prop_assert_eq!(rebuilt.fingerprint(), fp, "edge order changed the fingerprint");
            corpus.insert(key.clone(), fp);
            by_hash.insert(fp, key);
        };
        loop {
            // Probe every candidate (apply → snapshot → rollback), then
            // commit one — the same interleaving the greedy engines drive.
            for e in candidates(&g, &tree) {
                let base = tree.expected_flow(&g, false);
                if let ProbePlan::Sampled(plan) = tree.probe_plan(&g, e, base).unwrap() {
                    record(plan.snapshot(), step);
                }
            }
            let cands = candidates(&g, &tree);
            if cands.is_empty() {
                break;
            }
            let pick = spec.order_seed[step % spec.order_seed.len()] % cands.len();
            step += 1;
            tree.insert_edge(&g, cands[pick], &mut provider).unwrap();
            // Committed components join the corpus too.
            let committed: Vec<(VertexId, Vec<EdgeId>)> = tree
                .components()
                .map(|c| (c.articulation, c.edges().collect()))
                .collect();
            for (articulation, edges) in committed {
                if !edges.is_empty() {
                    record(&ComponentGraph::build(&g, articulation, &edges), step);
                }
            }
        }
        // The walk must have exercised more than a trivial corpus.
        prop_assert!(!corpus.is_empty());
    }
}
