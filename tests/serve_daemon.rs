//! End-to-end tests of the `flowmax-serve` binary over its TCP line
//! protocol: ephemeral-port startup handshake, LOAD/SOLVE/STATS, streamed
//! anytime steps, protocol-error recovery, the deterministic-replay
//! contract *on the wire* (f64 `Display` is shortest-roundtrip, so equal
//! RESULT lines mean bit-equal values), wide-lane replays, backpressure
//! formatting, and the graceful SHUTDOWN contract: every open connection
//! gets a terminal line, never a raw EOF.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use flowmax::datasets::{suggest_query, ErdosConfig};
use flowmax::graph::{io as gio, ProbabilisticGraph, VertexId};

/// Kills the daemon if the test panics before the SHUTDOWN handshake.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `flowmax-serve --port 0 <extra_args>` with `envs` set and reads
/// the `LISTENING <port>` banner.
fn spawn_daemon(extra_args: &[&str], envs: &[(&str, &str)]) -> (DaemonGuard, u16) {
    let mut command = Command::new(env!("CARGO_BIN_EXE_flowmax-serve"));
    command
        .args(["--port", "0"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (key, value) in envs {
        command.env(key, value);
    }
    let mut child = command.spawn().expect("spawn flowmax-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let guard = DaemonGuard(child);
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read LISTENING banner");
    let port: u16 = banner
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .parse()
        .expect("banner carries the port");
    (guard, port)
}

/// Waits (bounded) for the daemon process to exit successfully.
fn wait_for_clean_exit(guard: &mut DaemonGuard) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match guard.0.try_wait().expect("poll daemon") {
            Some(status) => {
                assert!(status.success(), "daemon exited with {status}");
                return;
            }
            None if Instant::now() > deadline => panic!("daemon ignored SHUTDOWN"),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Writes a small test graph under `dir` and returns its path and a good
/// query vertex.
fn write_graph(graph: &ProbabilisticGraph, dir: &Path, file_name: &str) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create graph dir");
    let path = dir.join(file_name);
    let file = std::fs::File::create(&path).expect("create graph file");
    let mut w = std::io::BufWriter::new(file);
    gio::write_text(graph, &mut w)
        .and_then(|_| w.flush())
        .expect("write graph file");
    path
}

fn test_graph() -> (ProbabilisticGraph, VertexId) {
    let graph = ErdosConfig::paper(80, 5.0).generate(19);
    let query = suggest_query(&graph);
    (graph, query)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to daemon");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write command");
        self.writer.flush().expect("flush command");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        assert!(!line.is_empty(), "daemon hung up unexpectedly");
        line.trim_end().to_string()
    }

    /// Sends one command and collects `STEP` lines until the final
    /// `OK`/`ERR` reply: `(steps, final_reply)`.
    fn roundtrip(&mut self, line: &str) -> (Vec<String>, String) {
        self.send(line);
        let mut steps = Vec::new();
        loop {
            let reply = self.recv();
            if reply.starts_with("STEP ") {
                steps.push(reply);
            } else {
                return (steps, reply);
            }
        }
    }

    /// LOADs a graph file and returns the announced fingerprint.
    fn load(&mut self, path: &Path) -> String {
        let (_, loaded) = self.roundtrip(&format!("LOAD {}", path.display()));
        assert!(loaded.starts_with("OK LOADED "), "{loaded}");
        loaded
            .split_whitespace()
            .nth(2)
            .expect("fingerprint field")
            .to_string()
    }
}

#[test]
fn daemon_serves_the_line_protocol_end_to_end() {
    let (graph, query) = test_graph();
    let dir = std::env::temp_dir().join(format!("flowmax-serve-test-{}", std::process::id()));
    let path = write_graph(&graph, &dir, "graph.txt");

    let (mut guard, port) = spawn_daemon(&["--threads", "2", "--seed", "42"], &[]);
    let mut client = Client::connect(port);

    // LOAD announces the fingerprint the SOLVE commands key on.
    let (_, loaded) = client.roundtrip(&format!("LOAD {}", path.display()));
    assert!(loaded.starts_with("OK LOADED "), "{loaded}");
    assert!(loaded.contains("vertices=80"), "{loaded}");
    let fp = loaded
        .split_whitespace()
        .nth(2)
        .expect("fingerprint field")
        .to_string();

    // A streamed solve: one STEP per committed edge, then the result.
    let solve = format!("SOLVE {fp} query={} budget=4 samples=200 seed=9", query.0);
    let (steps, result) = client.roundtrip(&format!("{solve} stream"));
    assert!(result.starts_with("OK RESULT flow="), "{result}");
    assert!(result.contains("seed=9"), "{result}");
    let edges = result
        .rsplit_once("edges=")
        .expect("edges field")
        .1
        .split(',')
        .count();
    assert_eq!(steps.len(), edges, "one STEP per selected edge");

    // The replay contract on the wire: the same SOLVE line (sans stream)
    // answers with a byte-identical RESULT line.
    let (no_steps, replay) = client.roundtrip(&solve);
    assert!(no_steps.is_empty(), "unrequested STEP lines");
    assert_eq!(replay, result, "replay diverged on the wire");

    // Protocol errors answer ERR and keep the connection serviceable.
    let (_, err) = client.roundtrip("FROBNICATE now");
    assert!(err.starts_with("ERR "), "{err}");
    let (_, err) = client.roundtrip(&format!("SOLVE {fp} budget=3"));
    assert!(err.contains("query="), "{err}");
    let (_, err) = client.roundtrip("SOLVE ffffffffffffffff query=0 budget=1");
    assert!(err.starts_with("ERR "), "{err}");
    // Unknown SOLVE keys are rejected, not silently dropped.
    let (_, err) = client.roundtrip(&format!("SOLVE {fp} query=0 budget=1 frobnicate=9"));
    assert!(err.contains("unknown SOLVE key"), "{err}");
    // Malformed fingerprints (non-hex) are a parse error.
    let (_, err) = client.roundtrip("SOLVE zz@@ query=0 budget=1");
    assert!(err.contains("invalid fingerprint"), "{err}");

    // RESUME is idempotent (this daemon never paused).
    let (_, resumed) = client.roundtrip("RESUME");
    assert_eq!(resumed, "OK RESUMED");

    let (_, stats) = client.roundtrip("STATS");
    assert!(stats.starts_with("OK STATS resident=1 "), "{stats}");
    assert!(stats.contains("completed=2"), "{stats}");
    assert!(stats.contains("rejected=0"), "{stats}");

    // A second connection sees the same resident graph.
    let mut second = Client::connect(port);
    let (_, replay2) = second.roundtrip(&solve);
    assert_eq!(replay2, result, "second connection diverged");
    let (_, bye) = second.roundtrip("QUIT");
    assert_eq!(bye, "OK BYE");

    // SHUTDOWN stops the whole daemon.
    let (_, bye) = client.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    wait_for_clean_exit(&mut guard);
    let _ = std::fs::remove_dir_all(&dir);
}

/// LOAD treats everything after the command word as the path, so graph
/// files living under directories with spaces load fine — and the
/// argument-less commands reject trailing garbage instead of silently
/// ignoring it (a truncated-parse regression in both directions).
#[test]
fn load_accepts_spaced_paths_and_bare_commands_reject_garbage() {
    let (graph, query) = test_graph();
    let dir = std::env::temp_dir().join(format!("flowmax serve spaced {}", std::process::id()));
    let path = write_graph(&graph, &dir, "my graph file.txt");

    let (mut guard, port) = spawn_daemon(&["--threads", "1"], &[]);
    let mut client = Client::connect(port);

    // The spaced path loads; the old first-token parse would have tried
    // to open ".../flowmax" and failed.
    let fp = client.load(&path);
    let (_, result) = client.roundtrip(&format!(
        "SOLVE {fp} query={} budget=2 samples=100 seed=3",
        query.0
    ));
    assert!(result.starts_with("OK RESULT flow="), "{result}");

    // A missing path is still an error.
    let (_, err) = client.roundtrip("LOAD");
    assert!(err.contains("requires a path"), "{err}");

    // Trailing tokens on argument-less commands are protocol errors, and
    // the connection stays serviceable afterwards.
    for command in ["STATS", "RESUME", "QUIT", "SHUTDOWN"] {
        let (_, err) = client.roundtrip(&format!("{command} now please"));
        assert!(
            err.starts_with("ERR ") && err.contains("takes no arguments"),
            "{command}: {err}"
        );
    }
    let (_, stats) = client.roundtrip("STATS");
    assert!(stats.starts_with("OK STATS "), "{stats}");

    let (_, bye) = client.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    wait_for_clean_exit(&mut guard);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The replay contract across lane widths, on the wire: a daemon running
/// 512-world SIMD lane blocks answers the same SOLVE line with RESULT and
/// STEP lines byte-identical to a narrow (64-world) daemon's.
#[test]
fn wide_lane_daemon_replays_narrow_results_byte_identically() {
    let (graph, query) = test_graph();
    let dir = std::env::temp_dir().join(format!("flowmax-serve-lanes-{}", std::process::id()));
    let path = write_graph(&graph, &dir, "graph.txt");
    let solve = format!(
        "SOLVE {{fp}} query={} budget=4 samples=300 seed=11 stream",
        query.0
    );

    let mut transcripts = Vec::new();
    for lanes in ["1", "8"] {
        let (mut guard, port) = spawn_daemon(
            &["--threads", "2", "--lanes", lanes],
            &[("FLOWMAX_LANES", lanes)],
        );
        let mut client = Client::connect(port);
        let fp = client.load(&path);
        let (steps, result) = client.roundtrip(&solve.replace("{fp}", &fp));
        assert!(
            result.starts_with("OK RESULT flow="),
            "lanes {lanes}: {result}"
        );
        transcripts.push((steps, result));
        let (_, bye) = client.roundtrip("SHUTDOWN");
        assert_eq!(bye, "OK BYE");
        wait_for_clean_exit(&mut guard);
    }
    let (narrow, wide) = (&transcripts[0], &transcripts[1]);
    assert_eq!(narrow.1, wide.1, "RESULT line diverged across lane widths");
    assert_eq!(narrow.0, wide.0, "STEP stream diverged across lane widths");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An oversized request line — 10 MB of garbage without a newline — is
/// drained and answered with the exact `ERR LINE TOO LONG` line, and the
/// same connection keeps serving afterwards: the bounded reader resyncs on
/// the newline instead of buffering the flood or hanging up.
#[test]
fn oversized_request_line_is_rejected_and_the_connection_survives() {
    let (mut guard, port) = spawn_daemon(&["--threads", "1"], &[]);
    let mut client = Client::connect(port);

    let garbage = vec![b'x'; 10 * 1024 * 1024];
    client.writer.write_all(&garbage).expect("write flood");
    client.writer.write_all(b"\n").expect("terminate flood");
    client.writer.flush().expect("flush flood");
    assert_eq!(client.recv(), "ERR LINE TOO LONG max_bytes=65536");

    // The protocol is resynchronized: normal commands still work.
    let (_, stats) = client.roundtrip("STATS");
    assert!(stats.starts_with("OK STATS "), "{stats}");

    // A line exactly at a sane size still parses (it's an unknown command,
    // not a length rejection).
    let (_, err) = client.roundtrip(&"y".repeat(1000));
    assert!(err.starts_with("ERR unknown command"), "{err}");

    let (_, bye) = client.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    wait_for_clean_exit(&mut guard);
}

/// Deadlines and cancellation on the wire: an expired `deadline_ms=`
/// answers `OK DEGRADED` with the step count it kept, `CANCEL <ticket>`
/// degrades the in-flight SOLVE from another connection, unknown tickets
/// are typed errors, and a generous deadline leaves the RESULT line
/// byte-identical to the undeadlined replay (deadlines sit outside the
/// replay key).
#[test]
fn deadline_and_cancel_verbs_degrade_queries_on_the_wire() {
    let (graph, query) = test_graph();
    let dir = std::env::temp_dir().join(format!("flowmax-serve-deadline-{}", std::process::id()));
    let path = write_graph(&graph, &dir, "graph.txt");

    let (mut guard, port) = spawn_daemon(&["--threads", "1", "--start-paused"], &[]);
    let mut control = Client::connect(port);
    let fp = control.load(&path);

    // Connection A queues a query whose deadline is already dead on
    // arrival; connection B queues one registered under a ticket name.
    let mut doomed = Client::connect(port);
    doomed.send(&format!(
        "SOLVE {fp} query={} budget=3 samples=100 deadline_ms=0",
        query.0
    ));
    let mut ticketed = Client::connect(port);
    ticketed.send(&format!(
        "SOLVE {fp} query={} budget=3 samples=100 ticket=job1",
        query.0
    ));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, stats) = control.roundtrip("STATS");
        if stats.contains("queued=2") {
            break;
        }
        assert!(Instant::now() < deadline, "queries never queued: {stats}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Cancel the ticketed query from a *different* connection; a name
    // that was never registered is a typed error.
    let (_, cancelled) = control.roundtrip("CANCEL job1");
    assert_eq!(cancelled, "OK CANCELLED job1");
    let (_, err) = control.roundtrip("CANCEL nope");
    assert!(err.starts_with("ERR unknown ticket"), "{err}");

    // Both degrade at step zero: the deadline was dead on admission, the
    // cancel landed before the dispatcher ran the batch.
    let (_, resumed) = control.roundtrip("RESUME");
    assert_eq!(resumed, "OK RESUMED");
    let degraded = doomed.recv();
    assert!(
        degraded.starts_with("OK DEGRADED steps_done=0 budget=3 "),
        "{degraded}"
    );
    let degraded = ticketed.recv();
    assert!(
        degraded.starts_with("OK DEGRADED steps_done=0 budget=3 "),
        "{degraded}"
    );

    // The completed query's registration is gone: its name is free again
    // for CANCEL to reject.
    let (_, err) = control.roundtrip("CANCEL job1");
    assert!(err.starts_with("ERR unknown ticket"), "{err}");

    // A deadline generous enough to never fire answers byte-identically
    // to the undeadlined solve: the deadline moved nothing.
    let solve = format!("SOLVE {fp} query={} budget=3 samples=100 seed=5", query.0);
    let (_, plain) = control.roundtrip(&solve);
    assert!(plain.starts_with("OK RESULT flow="), "{plain}");
    let (_, relaxed) = control.roundtrip(&format!("{solve} deadline_ms=60000"));
    assert_eq!(relaxed, plain, "an unfired deadline changed the wire bytes");

    let (_, bye) = control.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    wait_for_clean_exit(&mut guard);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The dynamic backoff hint on the wire: with the queue four deep and
/// coalescing two per batch, a rejected SOLVE carries `ceil((4 + 1) / 2)`
/// base units — `retry_after_ms=15` — not the flat base hint.
#[test]
fn overload_hints_scale_with_queue_depth_on_the_wire() {
    let (graph, query) = test_graph();
    let dir = std::env::temp_dir().join(format!("flowmax-serve-backoff-{}", std::process::id()));
    let path = write_graph(&graph, &dir, "graph.txt");

    let (mut guard, port) = spawn_daemon(
        &[
            "--threads",
            "1",
            "--queue-capacity",
            "4",
            "--coalesce-max",
            "2",
            "--retry-after-ms",
            "5",
            "--start-paused",
        ],
        &[],
    );
    let mut control = Client::connect(port);
    let fp = control.load(&path);

    // Four connections fill the paused queue.
    let mut queued = Vec::new();
    for i in 0..4 {
        let mut client = Client::connect(port);
        client.send(&format!(
            "SOLVE {fp} query={} budget=1 samples=100 seed={i}",
            query.0
        ));
        queued.push(client);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, stats) = control.roundtrip("STATS");
        if stats.contains("queued=4") {
            break;
        }
        assert!(Instant::now() < deadline, "queue never filled: {stats}");
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut bounced = Client::connect(port);
    let (_, err) = bounced.roundtrip(&format!("SOLVE {fp} query={} budget=1", query.0));
    assert_eq!(err, "ERR OVERLOADED retry_after_ms=15");

    // Shutdown drains the queue: every queued connection gets a terminal
    // line, never a raw EOF.
    let (_, bye) = bounced.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    for client in &mut queued {
        assert_eq!(client.recv(), "ERR SHUTDOWN server stopping");
    }
    wait_for_clean_exit(&mut guard);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--fault-plan` on a binary built with `--features faults`: the armed
/// `daemon/conn` site answers the scheduled connection with a terminal
/// `ERR FAULT injected` line (never a raw EOF) and leaves every other
/// connection untouched.
#[cfg(feature = "faults")]
#[test]
fn fault_plan_injects_connection_faults_with_terminal_lines() {
    let (mut guard, port) = spawn_daemon(
        &["--threads", "1", "--fault-plan", "daemon/conn@1=always"],
        &[],
    );

    // Connection 0 is clean.
    let mut first = Client::connect(port);
    let (_, stats) = first.roundtrip("STATS");
    assert!(stats.starts_with("OK STATS "), "{stats}");

    // Connection 1 is the scheduled casualty: one terminal line, then EOF.
    let mut faulted = Client::connect(port);
    assert_eq!(faulted.recv(), "ERR FAULT injected");
    let mut line = String::new();
    let n = faulted
        .reader
        .read_line(&mut line)
        .expect("read after fault");
    assert_eq!(
        n, 0,
        "the faulted connection closes after its terminal line"
    );

    // Connection 2 is clean again; the daemon took no damage.
    let mut second = Client::connect(port);
    let (_, stats) = second.roundtrip("STATS");
    assert!(stats.starts_with("OK STATS "), "{stats}");
    let (_, bye) = second.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    wait_for_clean_exit(&mut guard);
}

/// `--fault-plan` on a binary built *without* the faults feature must
/// refuse to start: a plan that silently no-ops would be a lie.
#[cfg(not(feature = "faults"))]
#[test]
fn fault_plan_without_the_feature_refuses_to_start() {
    let output = Command::new(env!("CARGO_BIN_EXE_flowmax-serve"))
        .args(["--port", "0", "--fault-plan", "daemon/conn@0=always"])
        .output()
        .expect("run flowmax-serve");
    assert!(!output.status.success(), "the daemon must refuse the plan");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--features faults"),
        "stderr must say why: {stderr}"
    );
}

/// Backpressure formatting and the graceful-shutdown contract: a paused
/// daemon with a one-slot queue rejects the second SOLVE with the exact
/// `ERR OVERLOADED retry_after_ms=<hint>` line, and SHUTDOWN hands every
/// open connection a terminal `ERR SHUTDOWN server stopping` line — the
/// queued query, the idle connection, late arrivals — never a raw EOF.
#[test]
fn overload_formatting_and_shutdown_terminal_lines() {
    let (graph, query) = test_graph();
    let dir = std::env::temp_dir().join(format!("flowmax-serve-shutdown-{}", std::process::id()));
    let path = write_graph(&graph, &dir, "graph.txt");

    let (mut guard, port) = spawn_daemon(
        &[
            "--threads",
            "1",
            "--queue-capacity",
            "1",
            "--retry-after-ms",
            "7",
            "--start-paused",
        ],
        &[],
    );
    let mut loader = Client::connect(port);
    let fp = loader.load(&path);

    // Connection A fills the one-slot queue; paused, so it never runs.
    let mut queued = Client::connect(port);
    queued.send(&format!(
        "SOLVE {fp} query={} budget=2 samples=100",
        query.0
    ));
    // Wait until A's query is admitted before probing the full queue.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, stats) = loader.roundtrip("STATS");
        if stats.contains("queued=1") {
            break;
        }
        assert!(Instant::now() < deadline, "query never queued: {stats}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Connection B bounces off the full queue with the exact hint format.
    let mut bounced = Client::connect(port);
    let (_, err) = bounced.roundtrip(&format!("SOLVE {fp} query={} budget=1", query.0));
    assert_eq!(err, "ERR OVERLOADED retry_after_ms=7");

    // SHUTDOWN from B: B gets its goodbye, A's queued query drains with
    // the terminal line, and the idle loader connection is told too.
    let (_, bye) = bounced.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    assert_eq!(queued.recv(), "ERR SHUTDOWN server stopping");
    assert_eq!(loader.recv(), "ERR SHUTDOWN server stopping");
    wait_for_clean_exit(&mut guard);
    let _ = std::fs::remove_dir_all(&dir);
}
