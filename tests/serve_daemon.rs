//! End-to-end test of the `flowmax-serve` binary over its TCP line
//! protocol: ephemeral-port startup handshake, LOAD/SOLVE/STATS, streamed
//! anytime steps, protocol-error recovery, the deterministic-replay
//! contract *on the wire* (f64 `Display` is shortest-roundtrip, so equal
//! RESULT lines mean bit-equal values), and clean SHUTDOWN.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use flowmax::datasets::{suggest_query, ErdosConfig};
use flowmax::graph::io as gio;

/// Kills the daemon if the test panics before the SHUTDOWN handshake.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to daemon");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write command");
        self.writer.flush().expect("flush command");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        assert!(!line.is_empty(), "daemon hung up unexpectedly");
        line.trim_end().to_string()
    }

    /// Sends one command and collects `STEP` lines until the final
    /// `OK`/`ERR` reply: `(steps, final_reply)`.
    fn roundtrip(&mut self, line: &str) -> (Vec<String>, String) {
        self.send(line);
        let mut steps = Vec::new();
        loop {
            let reply = self.recv();
            if reply.starts_with("STEP ") {
                steps.push(reply);
            } else {
                return (steps, reply);
            }
        }
    }
}

#[test]
fn daemon_serves_the_line_protocol_end_to_end() {
    // A graph file for the daemon to LOAD.
    let graph = ErdosConfig::paper(80, 5.0).generate(19);
    let query = suggest_query(&graph);
    let path = std::env::temp_dir().join(format!("flowmax-serve-test-{}.txt", std::process::id()));
    {
        let file = std::fs::File::create(&path).expect("create graph file");
        let mut w = std::io::BufWriter::new(file);
        gio::write_text(&graph, &mut w)
            .and_then(|_| w.flush())
            .expect("write graph file");
    }

    // Start on an ephemeral port; the startup handshake prints it.
    let mut child = Command::new(env!("CARGO_BIN_EXE_flowmax-serve"))
        .args(["--port", "0", "--threads", "2", "--seed", "42"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn flowmax-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut guard = DaemonGuard(child);
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read LISTENING banner");
    let port: u16 = banner
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .parse()
        .expect("banner carries the port");

    let mut client = Client::connect(port);

    // LOAD announces the fingerprint the SOLVE commands key on.
    let (_, loaded) = client.roundtrip(&format!("LOAD {}", path.display()));
    assert!(loaded.starts_with("OK LOADED "), "{loaded}");
    assert!(loaded.contains("vertices=80"), "{loaded}");
    let fp = loaded
        .split_whitespace()
        .nth(2)
        .expect("fingerprint field")
        .to_string();

    // A streamed solve: one STEP per committed edge, then the result.
    let solve = format!("SOLVE {fp} query={} budget=4 samples=200 seed=9", query.0);
    let (steps, result) = client.roundtrip(&format!("{solve} stream"));
    assert!(result.starts_with("OK RESULT flow="), "{result}");
    assert!(result.contains("seed=9"), "{result}");
    let edges = result
        .rsplit_once("edges=")
        .expect("edges field")
        .1
        .split(',')
        .count();
    assert_eq!(steps.len(), edges, "one STEP per selected edge");

    // The replay contract on the wire: the same SOLVE line (sans stream)
    // answers with a byte-identical RESULT line.
    let (no_steps, replay) = client.roundtrip(&solve);
    assert!(no_steps.is_empty(), "unrequested STEP lines");
    assert_eq!(replay, result, "replay diverged on the wire");

    // Protocol errors answer ERR and keep the connection serviceable.
    let (_, err) = client.roundtrip("FROBNICATE now");
    assert!(err.starts_with("ERR "), "{err}");
    let (_, err) = client.roundtrip(&format!("SOLVE {fp} budget=3"));
    assert!(err.contains("query="), "{err}");
    let (_, err) = client.roundtrip("SOLVE ffffffffffffffff query=0 budget=1");
    assert!(err.starts_with("ERR "), "{err}");

    let (_, stats) = client.roundtrip("STATS");
    assert!(stats.starts_with("OK STATS resident=1 "), "{stats}");
    assert!(stats.contains("completed=2"), "{stats}");
    assert!(stats.contains("rejected=0"), "{stats}");

    // A second connection sees the same resident graph.
    let mut second = Client::connect(port);
    let (_, replay2) = second.roundtrip(&solve);
    assert_eq!(replay2, result, "second connection diverged");
    let (_, bye) = second.roundtrip("QUIT");
    assert_eq!(bye, "OK BYE");

    // SHUTDOWN stops the whole daemon.
    let (_, bye) = client.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match guard.0.try_wait().expect("poll daemon") {
            Some(status) => {
                assert!(status.success(), "daemon exited with {status}");
                break;
            }
            None if Instant::now() > deadline => panic!("daemon ignored SHUTDOWN"),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let _ = std::fs::remove_file(&path);
}
