//! End-to-end tests of the `flowmax-serve` binary over its TCP line
//! protocol: ephemeral-port startup handshake, LOAD/SOLVE/STATS, streamed
//! anytime steps, protocol-error recovery, the deterministic-replay
//! contract *on the wire* (f64 `Display` is shortest-roundtrip, so equal
//! RESULT lines mean bit-equal values), wide-lane replays, backpressure
//! formatting, and the graceful SHUTDOWN contract: every open connection
//! gets a terminal line, never a raw EOF.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use flowmax::datasets::{suggest_query, ErdosConfig};
use flowmax::graph::{io as gio, ProbabilisticGraph, VertexId};

/// Kills the daemon if the test panics before the SHUTDOWN handshake.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `flowmax-serve --port 0 <extra_args>` with `envs` set and reads
/// the `LISTENING <port>` banner.
fn spawn_daemon(extra_args: &[&str], envs: &[(&str, &str)]) -> (DaemonGuard, u16) {
    let mut command = Command::new(env!("CARGO_BIN_EXE_flowmax-serve"));
    command
        .args(["--port", "0"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (key, value) in envs {
        command.env(key, value);
    }
    let mut child = command.spawn().expect("spawn flowmax-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let guard = DaemonGuard(child);
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read LISTENING banner");
    let port: u16 = banner
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .parse()
        .expect("banner carries the port");
    (guard, port)
}

/// Waits (bounded) for the daemon process to exit successfully.
fn wait_for_clean_exit(guard: &mut DaemonGuard) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match guard.0.try_wait().expect("poll daemon") {
            Some(status) => {
                assert!(status.success(), "daemon exited with {status}");
                return;
            }
            None if Instant::now() > deadline => panic!("daemon ignored SHUTDOWN"),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Writes a small test graph under `dir` and returns its path and a good
/// query vertex.
fn write_graph(graph: &ProbabilisticGraph, dir: &Path, file_name: &str) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create graph dir");
    let path = dir.join(file_name);
    let file = std::fs::File::create(&path).expect("create graph file");
    let mut w = std::io::BufWriter::new(file);
    gio::write_text(graph, &mut w)
        .and_then(|_| w.flush())
        .expect("write graph file");
    path
}

fn test_graph() -> (ProbabilisticGraph, VertexId) {
    let graph = ErdosConfig::paper(80, 5.0).generate(19);
    let query = suggest_query(&graph);
    (graph, query)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to daemon");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write command");
        self.writer.flush().expect("flush command");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        assert!(!line.is_empty(), "daemon hung up unexpectedly");
        line.trim_end().to_string()
    }

    /// Sends one command and collects `STEP` lines until the final
    /// `OK`/`ERR` reply: `(steps, final_reply)`.
    fn roundtrip(&mut self, line: &str) -> (Vec<String>, String) {
        self.send(line);
        let mut steps = Vec::new();
        loop {
            let reply = self.recv();
            if reply.starts_with("STEP ") {
                steps.push(reply);
            } else {
                return (steps, reply);
            }
        }
    }

    /// LOADs a graph file and returns the announced fingerprint.
    fn load(&mut self, path: &Path) -> String {
        let (_, loaded) = self.roundtrip(&format!("LOAD {}", path.display()));
        assert!(loaded.starts_with("OK LOADED "), "{loaded}");
        loaded
            .split_whitespace()
            .nth(2)
            .expect("fingerprint field")
            .to_string()
    }
}

#[test]
fn daemon_serves_the_line_protocol_end_to_end() {
    let (graph, query) = test_graph();
    let dir = std::env::temp_dir().join(format!("flowmax-serve-test-{}", std::process::id()));
    let path = write_graph(&graph, &dir, "graph.txt");

    let (mut guard, port) = spawn_daemon(&["--threads", "2", "--seed", "42"], &[]);
    let mut client = Client::connect(port);

    // LOAD announces the fingerprint the SOLVE commands key on.
    let (_, loaded) = client.roundtrip(&format!("LOAD {}", path.display()));
    assert!(loaded.starts_with("OK LOADED "), "{loaded}");
    assert!(loaded.contains("vertices=80"), "{loaded}");
    let fp = loaded
        .split_whitespace()
        .nth(2)
        .expect("fingerprint field")
        .to_string();

    // A streamed solve: one STEP per committed edge, then the result.
    let solve = format!("SOLVE {fp} query={} budget=4 samples=200 seed=9", query.0);
    let (steps, result) = client.roundtrip(&format!("{solve} stream"));
    assert!(result.starts_with("OK RESULT flow="), "{result}");
    assert!(result.contains("seed=9"), "{result}");
    let edges = result
        .rsplit_once("edges=")
        .expect("edges field")
        .1
        .split(',')
        .count();
    assert_eq!(steps.len(), edges, "one STEP per selected edge");

    // The replay contract on the wire: the same SOLVE line (sans stream)
    // answers with a byte-identical RESULT line.
    let (no_steps, replay) = client.roundtrip(&solve);
    assert!(no_steps.is_empty(), "unrequested STEP lines");
    assert_eq!(replay, result, "replay diverged on the wire");

    // Protocol errors answer ERR and keep the connection serviceable.
    let (_, err) = client.roundtrip("FROBNICATE now");
    assert!(err.starts_with("ERR "), "{err}");
    let (_, err) = client.roundtrip(&format!("SOLVE {fp} budget=3"));
    assert!(err.contains("query="), "{err}");
    let (_, err) = client.roundtrip("SOLVE ffffffffffffffff query=0 budget=1");
    assert!(err.starts_with("ERR "), "{err}");
    // Unknown SOLVE keys are rejected, not silently dropped.
    let (_, err) = client.roundtrip(&format!("SOLVE {fp} query=0 budget=1 frobnicate=9"));
    assert!(err.contains("unknown SOLVE key"), "{err}");
    // Malformed fingerprints (non-hex) are a parse error.
    let (_, err) = client.roundtrip("SOLVE zz@@ query=0 budget=1");
    assert!(err.contains("invalid fingerprint"), "{err}");

    // RESUME is idempotent (this daemon never paused).
    let (_, resumed) = client.roundtrip("RESUME");
    assert_eq!(resumed, "OK RESUMED");

    let (_, stats) = client.roundtrip("STATS");
    assert!(stats.starts_with("OK STATS resident=1 "), "{stats}");
    assert!(stats.contains("completed=2"), "{stats}");
    assert!(stats.contains("rejected=0"), "{stats}");

    // A second connection sees the same resident graph.
    let mut second = Client::connect(port);
    let (_, replay2) = second.roundtrip(&solve);
    assert_eq!(replay2, result, "second connection diverged");
    let (_, bye) = second.roundtrip("QUIT");
    assert_eq!(bye, "OK BYE");

    // SHUTDOWN stops the whole daemon.
    let (_, bye) = client.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    wait_for_clean_exit(&mut guard);
    let _ = std::fs::remove_dir_all(&dir);
}

/// LOAD treats everything after the command word as the path, so graph
/// files living under directories with spaces load fine — and the
/// argument-less commands reject trailing garbage instead of silently
/// ignoring it (a truncated-parse regression in both directions).
#[test]
fn load_accepts_spaced_paths_and_bare_commands_reject_garbage() {
    let (graph, query) = test_graph();
    let dir = std::env::temp_dir().join(format!("flowmax serve spaced {}", std::process::id()));
    let path = write_graph(&graph, &dir, "my graph file.txt");

    let (mut guard, port) = spawn_daemon(&["--threads", "1"], &[]);
    let mut client = Client::connect(port);

    // The spaced path loads; the old first-token parse would have tried
    // to open ".../flowmax" and failed.
    let fp = client.load(&path);
    let (_, result) = client.roundtrip(&format!(
        "SOLVE {fp} query={} budget=2 samples=100 seed=3",
        query.0
    ));
    assert!(result.starts_with("OK RESULT flow="), "{result}");

    // A missing path is still an error.
    let (_, err) = client.roundtrip("LOAD");
    assert!(err.contains("requires a path"), "{err}");

    // Trailing tokens on argument-less commands are protocol errors, and
    // the connection stays serviceable afterwards.
    for command in ["STATS", "RESUME", "QUIT", "SHUTDOWN"] {
        let (_, err) = client.roundtrip(&format!("{command} now please"));
        assert!(
            err.starts_with("ERR ") && err.contains("takes no arguments"),
            "{command}: {err}"
        );
    }
    let (_, stats) = client.roundtrip("STATS");
    assert!(stats.starts_with("OK STATS "), "{stats}");

    let (_, bye) = client.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    wait_for_clean_exit(&mut guard);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The replay contract across lane widths, on the wire: a daemon running
/// 512-world SIMD lane blocks answers the same SOLVE line with RESULT and
/// STEP lines byte-identical to a narrow (64-world) daemon's.
#[test]
fn wide_lane_daemon_replays_narrow_results_byte_identically() {
    let (graph, query) = test_graph();
    let dir = std::env::temp_dir().join(format!("flowmax-serve-lanes-{}", std::process::id()));
    let path = write_graph(&graph, &dir, "graph.txt");
    let solve = format!(
        "SOLVE {{fp}} query={} budget=4 samples=300 seed=11 stream",
        query.0
    );

    let mut transcripts = Vec::new();
    for lanes in ["1", "8"] {
        let (mut guard, port) = spawn_daemon(
            &["--threads", "2", "--lanes", lanes],
            &[("FLOWMAX_LANES", lanes)],
        );
        let mut client = Client::connect(port);
        let fp = client.load(&path);
        let (steps, result) = client.roundtrip(&solve.replace("{fp}", &fp));
        assert!(
            result.starts_with("OK RESULT flow="),
            "lanes {lanes}: {result}"
        );
        transcripts.push((steps, result));
        let (_, bye) = client.roundtrip("SHUTDOWN");
        assert_eq!(bye, "OK BYE");
        wait_for_clean_exit(&mut guard);
    }
    let (narrow, wide) = (&transcripts[0], &transcripts[1]);
    assert_eq!(narrow.1, wide.1, "RESULT line diverged across lane widths");
    assert_eq!(narrow.0, wide.0, "STEP stream diverged across lane widths");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Backpressure formatting and the graceful-shutdown contract: a paused
/// daemon with a one-slot queue rejects the second SOLVE with the exact
/// `ERR OVERLOADED retry_after_ms=<hint>` line, and SHUTDOWN hands every
/// open connection a terminal `ERR SHUTDOWN server stopping` line — the
/// queued query, the idle connection, late arrivals — never a raw EOF.
#[test]
fn overload_formatting_and_shutdown_terminal_lines() {
    let (graph, query) = test_graph();
    let dir = std::env::temp_dir().join(format!("flowmax-serve-shutdown-{}", std::process::id()));
    let path = write_graph(&graph, &dir, "graph.txt");

    let (mut guard, port) = spawn_daemon(
        &[
            "--threads",
            "1",
            "--queue-capacity",
            "1",
            "--retry-after-ms",
            "7",
            "--start-paused",
        ],
        &[],
    );
    let mut loader = Client::connect(port);
    let fp = loader.load(&path);

    // Connection A fills the one-slot queue; paused, so it never runs.
    let mut queued = Client::connect(port);
    queued.send(&format!(
        "SOLVE {fp} query={} budget=2 samples=100",
        query.0
    ));
    // Wait until A's query is admitted before probing the full queue.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, stats) = loader.roundtrip("STATS");
        if stats.contains("queued=1") {
            break;
        }
        assert!(Instant::now() < deadline, "query never queued: {stats}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Connection B bounces off the full queue with the exact hint format.
    let mut bounced = Client::connect(port);
    let (_, err) = bounced.roundtrip(&format!("SOLVE {fp} query={} budget=1", query.0));
    assert_eq!(err, "ERR OVERLOADED retry_after_ms=7");

    // SHUTDOWN from B: B gets its goodbye, A's queued query drains with
    // the terminal line, and the idle loader connection is told too.
    let (_, bye) = bounced.roundtrip("SHUTDOWN");
    assert_eq!(bye, "OK BYE");
    assert_eq!(queued.recv(), "ERR SHUTDOWN server stopping");
    assert_eq!(loader.recv(), "ERR SHUTDOWN server stopping");
    wait_for_clean_exit(&mut guard);
    let _ = std::fs::remove_dir_all(&dir);
}
