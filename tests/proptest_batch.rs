//! Property tests pinning the bit-parallel sampling engine to the scalar
//! reference: for random graphs, lane `w` of a [`WorldBatch`] must be the
//! *exact* world a scalar `sample_world` draws from the same seed-sequence
//! child, and the lane-BFS must agree with a scalar BFS world-for-world.
//!
//! Every property runs at all supported lane widths (1, 4, and 8 lane
//! words — 64, 256, and 512 worlds per block): the lane/seed contract says
//! lane `w` of a block draws from child stream `first_label + w` no matter
//! how the worlds are grouped, so the scalar reference pins every width.

use flowmax::graph::{
    Bfs, EdgeId, EdgeSubset, GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight,
};
use flowmax::sampling::{block_worlds, sample_world, LaneBfs, SeedSequence, WorldBatch, LANES};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SmallGraph {
    n: usize,
    tree_parents: Vec<usize>,
    chords: Vec<(usize, usize)>,
    probs: Vec<f64>,
    seed: u64,
}

fn small_graph() -> impl Strategy<Value = SmallGraph> {
    (3usize..10).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..n, n - 1).prop_map(move |raw| {
            raw.iter()
                .enumerate()
                .map(|(i, &r)| r % (i + 1))
                .collect::<Vec<_>>()
        });
        let chords = proptest::collection::vec((0usize..n, 0usize..n), 0..5);
        // Include certain edges (p = 1) so the draw-free fast path is
        // exercised alongside fractional coins.
        let probs = proptest::collection::vec(0.02f64..=1.0, (n - 1) + 5);
        let seed = 0u64..1_000;
        (Just(n), tree, chords, probs, seed).prop_map(|(n, tree_parents, chords, probs, seed)| {
            SmallGraph {
                n,
                tree_parents,
                chords,
                probs,
                seed,
            }
        })
    })
}

fn build(spec: &SmallGraph) -> ProbabilisticGraph {
    let mut b = GraphBuilder::new();
    b.add_vertices(spec.n, Weight::ONE);
    let mut pi = 0;
    let next_prob = |pi: &mut usize| {
        // Snap near-one draws to exactly 1.0 so certain edges occur often.
        let raw = spec.probs[*pi % spec.probs.len()];
        *pi += 1;
        let p = if raw > 0.9 { 1.0 } else { raw };
        Probability::new(p).unwrap()
    };
    for (i, &parent) in spec.tree_parents.iter().enumerate() {
        b.add_edge(
            VertexId::from_index(i + 1),
            VertexId::from_index(parent),
            next_prob(&mut pi),
        )
        .unwrap();
    }
    for &(u, v) in &spec.chords {
        let (u, v) = (u % spec.n, v % spec.n);
        if u != v && !b.has_edge(VertexId::from_index(u), VertexId::from_index(v)) {
            b.add_edge(
                VertexId::from_index(u),
                VertexId::from_index(v),
                next_prob(&mut pi),
            )
            .unwrap();
        }
    }
    b.build()
}

/// Domain under test: every edge, or a proper subset (every other edge) to
/// exercise the domain restriction.
fn domains(g: &ProbabilisticGraph) -> Vec<EdgeSubset> {
    let full = EdgeSubset::full(g);
    let half = EdgeSubset::from_edges(g.edge_count(), g.edge_ids().filter(|e| e.index() % 2 == 0));
    vec![full, half]
}

/// Lane `w` of a width-`W` batch is bit-identical to the scalar world drawn
/// from child stream `first_label + w`.
fn batch_lanes_equal_scalar_worlds_at<const W: usize>(spec: &SmallGraph) {
    let g = build(spec);
    let seq = SeedSequence::new(spec.seed);
    for (d, domain) in domains(&g).into_iter().enumerate() {
        let first_label = d as u64 * block_worlds::<W>() as u64;
        let batch = WorldBatch::<W>::sample(&g, &domain, &seq, first_label, block_worlds::<W>());
        let mut scalar = EdgeSubset::for_graph(&g);
        let mut extracted = EdgeSubset::for_graph(&g);
        for lane in 0..block_worlds::<W>() {
            let mut rng = seq.rng(first_label + lane as u64);
            sample_world(&g, &domain, &mut rng, &mut scalar);
            batch.world(lane, &mut extracted);
            prop_assert_eq!(&scalar, &extracted, "W {} domain {} lane {}", W, d, lane);
            // Sampled worlds never leave their domain.
            prop_assert!(extracted.iter().all(|e| domain.contains(e)));
        }
    }
}

/// The lane-parallel reachability kernel agrees world-for-world with
/// `64 * W` scalar `sample_world` + BFS runs seeded from the same children.
fn lane_bfs_equals_scalar_bfs_at<const W: usize>(spec: &SmallGraph) {
    let g = build(spec);
    let seq = SeedSequence::new(spec.seed ^ 0xBEEF);
    let query = VertexId(0);
    for domain in domains(&g) {
        let batch = WorldBatch::<W>::sample(&g, &domain, &seq, 0, block_worlds::<W>());
        let mut lane_bfs = LaneBfs::<W>::new(g.vertex_count());
        lane_bfs.run_graph(&g, query, &batch);
        let mut world = EdgeSubset::for_graph(&g);
        let mut bfs = Bfs::new(g.vertex_count());
        for lane in 0..block_worlds::<W>() {
            let mut rng = seq.rng(lane as u64);
            sample_world(&g, &domain, &mut rng, &mut world);
            bfs.reachable(&g, &world, query);
            let (word, bit) = (lane as usize / 64, lane % 64);
            for v in g.vertices() {
                prop_assert_eq!(
                    bfs.was_visited(v),
                    lane_bfs.reached_mask(v.index())[word] >> bit & 1 == 1,
                    "W {} lane {} vertex {}",
                    W,
                    lane,
                    v.index()
                );
            }
        }
    }
}

/// Partial blocks (fewer than `64 * W` lanes) match the scalar reference on
/// exactly the active lanes and keep inactive bits clear.
fn partial_batches_match_scalar_prefix_at<const W: usize>(spec: &SmallGraph, lanes: u32) {
    let g = build(spec);
    let domain = EdgeSubset::full(&g);
    let seq = SeedSequence::new(spec.seed ^ 0xA11CE);
    let batch = WorldBatch::<W>::sample(&g, &domain, &seq, 0, lanes);
    prop_assert_eq!(batch.lanes(), lanes);
    let active = batch.active_mask();
    for e in g.edge_ids() {
        let mask = batch.edge_mask(e);
        for k in 0..W {
            prop_assert_eq!(mask[k] & !active[k], 0, "W {} word {}", W, k);
        }
    }
    let mut scalar = EdgeSubset::for_graph(&g);
    let mut extracted = EdgeSubset::for_graph(&g);
    for lane in 0..lanes {
        let mut rng = seq.rng(lane as u64);
        sample_world(&g, &domain, &mut rng, &mut scalar);
        batch.world(lane, &mut extracted);
        prop_assert_eq!(&scalar, &extracted, "W {} lane {}", W, lane);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lane `w` of the batch is bit-identical to the scalar world drawn
    /// from child stream `first_label + w`, at every supported width.
    #[test]
    fn batch_lanes_equal_scalar_worlds(spec in small_graph()) {
        batch_lanes_equal_scalar_worlds_at::<1>(&spec);
        batch_lanes_equal_scalar_worlds_at::<4>(&spec);
        batch_lanes_equal_scalar_worlds_at::<8>(&spec);
    }

    /// The lane-parallel reachability kernel agrees world-for-world with
    /// scalar `sample_world` + BFS runs, at every supported width.
    #[test]
    fn lane_bfs_equals_scalar_bfs_per_world(spec in small_graph()) {
        lane_bfs_equals_scalar_bfs_at::<1>(&spec);
        lane_bfs_equals_scalar_bfs_at::<4>(&spec);
        lane_bfs_equals_scalar_bfs_at::<8>(&spec);
    }

    /// Partial blocks (fewer lanes than the block holds) match the scalar
    /// reference on exactly the active lanes and keep inactive bits clear.
    /// `lanes` ranges over the widest block so each narrower width clamps
    /// into its own valid range, covering mid-word and mid-block cuts.
    #[test]
    fn partial_batches_match_scalar_prefix((spec, lanes) in (small_graph(), 1u32..512)) {
        partial_batches_match_scalar_prefix_at::<1>(&spec, lanes.clamp(1, 63));
        partial_batches_match_scalar_prefix_at::<4>(&spec, lanes.clamp(1, 255));
        partial_batches_match_scalar_prefix_at::<8>(&spec, lanes);
    }
}

/// Deterministic (non-proptest) regression: a batch over a domain with a
/// certain edge in front must line up with the scalar stream, proving both
/// engines share the draw-free fast path.
#[test]
fn certain_edges_keep_engines_aligned() {
    let mut b = GraphBuilder::new();
    b.add_vertices(4, Weight::ONE);
    b.add_edge(VertexId(0), VertexId(1), Probability::ONE)
        .unwrap();
    b.add_edge(VertexId(1), VertexId(2), Probability::new(0.5).unwrap())
        .unwrap();
    b.add_edge(VertexId(2), VertexId(3), Probability::new(0.5).unwrap())
        .unwrap();
    let g = b.build();
    let domain = EdgeSubset::full(&g);
    let seq = SeedSequence::new(2024);
    let batch = WorldBatch::<1>::sample(&g, &domain, &seq, 0, LANES);
    assert_eq!(
        batch.edge_mask(EdgeId(0)),
        [!0u64],
        "certain edge in every lane"
    );
    let mut scalar = EdgeSubset::for_graph(&g);
    let mut extracted = EdgeSubset::for_graph(&g);
    for lane in 0..LANES {
        let mut rng = seq.rng(lane as u64);
        sample_world(&g, &domain, &mut rng, &mut scalar);
        batch.world(lane, &mut extracted);
        assert_eq!(scalar, extracted, "lane {lane}");
    }
}
