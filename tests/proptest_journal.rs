//! Property-based tests of the F-tree undo journal: `apply` → `rollback`
//! must restore the tree **bit-identically** (structure, cached estimates,
//! local-id maps, arena/free-list layout, version numbers) over random
//! graphs and insertion orders, and the journal-based probe engine must
//! score every candidate exactly like the pinned clone-based reference.

use flowmax::core::{
    greedy_select, EstimateProvider, EstimatorConfig, FTree, GreedyConfig, ProbePlan,
    SamplingProvider,
};
use flowmax::graph::{EdgeId, GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight};
use proptest::prelude::*;

/// A random small uncertain graph: a spanning tree over `n` vertices plus
/// `extra` chords, with arbitrary probabilities and small integer weights
/// (the same shape `proptest_ftree` exercises).
#[derive(Debug, Clone)]
struct GraphSpec {
    n: usize,
    tree_parents: Vec<usize>,
    chords: Vec<(usize, usize)>,
    probs: Vec<f64>,
    weights: Vec<u8>,
    order_seed: Vec<usize>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (3usize..9).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..n, n - 1).prop_map(move |raw| {
            raw.iter()
                .enumerate()
                .map(|(i, &r)| r % (i + 1))
                .collect::<Vec<_>>()
        });
        let chords = proptest::collection::vec((0usize..n, 0usize..n), 0..5);
        let max_edges = (n - 1) + 5;
        let probs = proptest::collection::vec(0.05f64..=1.0, max_edges);
        let weights = proptest::collection::vec(0u8..10, n);
        let order = proptest::collection::vec(0usize..64, max_edges);
        (Just(n), tree, chords, probs, weights, order).prop_map(
            |(n, tree_parents, chords, probs, weights, order_seed)| GraphSpec {
                n,
                tree_parents,
                chords,
                probs,
                weights,
                order_seed,
            },
        )
    })
}

fn build(spec: &GraphSpec) -> ProbabilisticGraph {
    let mut b = GraphBuilder::new();
    for i in 0..spec.n {
        b.add_vertex(Weight::new(spec.weights[i] as f64).unwrap());
    }
    let mut pi = 0usize;
    let prob = |pi: &mut usize| {
        let p = spec.probs[*pi % spec.probs.len()];
        *pi += 1;
        Probability::new(p).unwrap()
    };
    for (i, &parent) in spec.tree_parents.iter().enumerate() {
        let child = i + 1;
        b.add_edge(
            VertexId::from_index(child),
            VertexId::from_index(parent),
            prob(&mut pi),
        )
        .unwrap();
    }
    for &(u, v) in &spec.chords {
        let (u, v) = (u % spec.n, v % spec.n);
        if u != v && !b.has_edge(VertexId::from_index(u), VertexId::from_index(v)) {
            b.add_edge(
                VertexId::from_index(u),
                VertexId::from_index(v),
                prob(&mut pi),
            )
            .unwrap();
        }
    }
    b.build()
}

/// Insertable candidates of `tree`: unselected edges with at least one
/// endpoint connected to `Q`.
fn candidates(g: &ProbabilisticGraph, tree: &FTree) -> Vec<EdgeId> {
    g.edge_ids()
        .filter(|&e| {
            if tree.selected_edges().contains(e) {
                return false;
            }
            let (a, b) = g.endpoints(e);
            tree.contains_vertex(a) || tree.contains_vertex(b)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline journal property: at every step of a random insertion
    /// sequence, applying **any** insertable candidate and rolling it back
    /// leaves the tree exactly equal (estimates, versions, arena layout and
    /// free-list order included) — and still passing the full invariant
    /// checker.
    #[test]
    fn apply_rollback_restores_exactly(spec in graph_spec()) {
        let g = build(&spec);
        let query = VertexId(0);
        let mut tree = FTree::new(&g, query);
        let mut provider = SamplingProvider::new(EstimatorConfig::exact(), 0);
        let mut step = 0usize;
        loop {
            for e in candidates(&g, &tree) {
                let before = tree.clone();
                let (_, journal) = tree.apply(&g, e, &mut provider).unwrap();
                prop_assert!(tree.selected_edges().contains(e));
                tree.rollback(journal);
                prop_assert!(tree == before,
                    "rollback of {e:?} did not restore the tree exactly");
                tree.validate(&g).expect("restored tree must stay valid");
            }
            let cands = candidates(&g, &tree);
            if cands.is_empty() {
                break;
            }
            let pick = spec.order_seed[step % spec.order_seed.len()] % cands.len();
            step += 1;
            tree.insert_edge(&g, cands[pick], &mut provider).unwrap();
        }
    }

    /// Journal-based probe plans score **identically** to the pinned
    /// clone-based reference, edge for edge: same flow, same bounds, same
    /// case, same sampling cost — under both exact and Monte-Carlo
    /// estimates (paired providers on the same seed keep the sample
    /// streams aligned between the two engines).
    #[test]
    fn journal_probe_scores_equal_clone_probe_scores(spec in graph_spec()) {
        let g = build(&spec);
        let query = VertexId(0);
        for mc in [false, true] {
            let config = if mc {
                EstimatorConfig::monte_carlo(128)
            } else {
                EstimatorConfig::exact()
            };
            let mut grow = SamplingProvider::new(config, 0);
            let mut journal_provider = SamplingProvider::new(config, 9);
            let mut clone_provider = SamplingProvider::new(config, 9);
            let mut tree = FTree::new(&g, query);
            let mut step = 0usize;
            loop {
                let base = tree.expected_flow(&g, false);
                for e in candidates(&g, &tree) {
                    let journal_outcome =
                        match tree.probe_plan(&g, e, base).unwrap() {
                            ProbePlan::Analytic(outcome) => outcome,
                            ProbePlan::Sampled(mut plan) => {
                                let est = journal_provider.estimate(plan.snapshot());
                                plan.score(&mut tree, &g, false, 0.01, est)
                            }
                        };
                    let clone_outcome =
                        match tree.probe_plan_cloning(&g, e, base).unwrap() {
                            ProbePlan::Analytic(outcome) => outcome,
                            ProbePlan::Sampled(mut plan) => {
                                let est = clone_provider.estimate(plan.snapshot());
                                plan.score(&mut tree, &g, false, 0.01, est)
                            }
                        };
                    prop_assert_eq!(journal_outcome.case, clone_outcome.case, "case of {:?}", e);
                    prop_assert_eq!(
                        journal_outcome.sampling_cost_edges,
                        clone_outcome.sampling_cost_edges
                    );
                    // Bit-identical, not approximately equal: both engines
                    // must evaluate the same structure under the same
                    // estimate.
                    prop_assert_eq!(journal_outcome.flow.to_bits(), clone_outcome.flow.to_bits(),
                        "flow of {:?}: {} vs {}", e, journal_outcome.flow, clone_outcome.flow);
                    prop_assert_eq!(journal_outcome.lower.to_bits(), clone_outcome.lower.to_bits());
                    prop_assert_eq!(journal_outcome.upper.to_bits(), clone_outcome.upper.to_bits());
                    // Probing must leave the tree's flow untouched.
                    prop_assert_eq!(tree.expected_flow(&g, false).to_bits(), base.to_bits());
                }
                let cands = candidates(&g, &tree);
                if cands.is_empty() {
                    break;
                }
                let pick = spec.order_seed[step % spec.order_seed.len()] % cands.len();
                step += 1;
                tree.insert_edge(&g, cands[pick], &mut grow).unwrap();
            }
        }
    }

    /// End to end: greedy selections with the journal engine are
    /// bit-identical to the pinned clone-based engine across the heuristic
    /// stacks (the clone path *is* the pre-journal code, so this pins the
    /// whole selection behaviour to `main`'s).
    #[test]
    fn selections_are_bit_identical_to_the_cloning_reference(spec in graph_spec()) {
        let g = build(&spec);
        let query = VertexId(0);
        let configs = [
            GreedyConfig::ft(6, 11),
            GreedyConfig::ft(6, 11).with_memo(),
            GreedyConfig::ft(6, 11).with_memo().with_ci(),
            GreedyConfig::ft(6, 11).with_memo().with_ci().with_ds(),
        ];
        for cfg in configs {
            let journal_run = greedy_select(&g, query, &cfg);
            let clone_run = greedy_select(&g, query, &cfg.with_cloning_probes());
            prop_assert_eq!(&journal_run.selected, &clone_run.selected);
            prop_assert_eq!(journal_run.final_flow.to_bits(), clone_run.final_flow.to_bits());
            prop_assert_eq!(&journal_run.flow_trace, &clone_run.flow_trace);
        }
    }
}
