//! Reproducibility: every stochastic pipeline stage (generation, selection,
//! evaluation) is a pure function of its master seed.

use flowmax::core::{solve, Algorithm, SolverConfig};
use flowmax::datasets::{suggest_query, DatasetSpec, ErdosConfig, PartitionedConfig, WsnConfig};

#[test]
fn solver_runs_are_bitwise_reproducible() {
    let g = ErdosConfig::paper(150, 5.0).generate(21);
    let q = suggest_query(&g);
    for alg in Algorithm::all() {
        let mut cfg = SolverConfig::paper(alg, 8, 77);
        cfg.samples = 250;
        let a = solve(&g, q, &cfg);
        let b = solve(&g, q, &cfg);
        assert_eq!(a.selected, b.selected, "{} selection differs", alg.name());
        assert_eq!(a.flow, b.flow, "{} evaluated flow differs", alg.name());
        assert_eq!(
            a.algorithm_flow,
            b.algorithm_flow,
            "{} internal flow differs",
            alg.name()
        );
    }
}

#[test]
fn different_seeds_change_sampled_algorithms() {
    let g = PartitionedConfig::paper(200, 6).generate(22);
    let q = suggest_query(&g);
    let mut cfg = SolverConfig::paper(Algorithm::Ft, 12, 1);
    cfg.samples = 100; // noisy on purpose
    let a = solve(&g, q, &cfg);
    cfg.seed = 2;
    let b = solve(&g, q, &cfg);
    // Selections usually differ under heavy sampling noise; at minimum the
    // internal flow estimates must differ.
    assert!(
        a.selected != b.selected || a.algorithm_flow != b.algorithm_flow,
        "independent seeds produced identical runs"
    );
}

#[test]
fn generators_are_seed_stable_at_spec_level() {
    let specs = [
        DatasetSpec::Erdos(ErdosConfig::paper(100, 4.0)),
        DatasetSpec::Partitioned(PartitionedConfig::paper(120, 6)),
        DatasetSpec::Wsn(WsnConfig::paper(100, 0.1)),
    ];
    for spec in specs {
        let a = spec.build(5);
        let b = spec.build(5);
        assert_eq!(a.edge_count(), b.edge_count(), "{}", spec.name());
        for (id, e) in a.edges() {
            let e2 = b.edge(id);
            assert_eq!(e.endpoints(), e2.endpoints(), "{}", spec.name());
            assert_eq!(e.probability, e2.probability, "{}", spec.name());
        }
        for v in a.vertices() {
            assert_eq!(a.weight(v), b.weight(v), "{}", spec.name());
        }
    }
}

#[test]
fn dijkstra_is_fully_deterministic_regardless_of_seed() {
    let g = PartitionedConfig::paper(150, 6).generate(23);
    let q = suggest_query(&g);
    let a = solve(&g, q, &SolverConfig::paper(Algorithm::Dijkstra, 10, 1));
    let b = solve(&g, q, &SolverConfig::paper(Algorithm::Dijkstra, 10, 999));
    assert_eq!(a.selected, b.selected, "spanning trees ignore the seed");
}
