//! Reproducibility: every stochastic pipeline stage (generation, selection,
//! evaluation) is a pure function of its master seed — and, for the batched
//! engine, of the master seed *only*: thread counts never change results.

use flowmax::core::{Algorithm, Session};
use flowmax::datasets::{suggest_query, DatasetSpec, ErdosConfig, PartitionedConfig, WsnConfig};
use flowmax::graph::EdgeSubset;
use flowmax::sampling::{ParallelEstimator, SeedSequence};

#[test]
fn solver_runs_are_bitwise_reproducible() {
    let g = ErdosConfig::paper(150, 5.0).generate(21);
    let q = suggest_query(&g);
    let session = Session::new(&g).with_seed(77);
    for alg in Algorithm::all() {
        let run = || {
            session
                .query(q)
                .unwrap()
                .algorithm(alg)
                .budget(8)
                .samples(250)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.selected, b.selected, "{} selection differs", alg.name());
        assert_eq!(a.flow, b.flow, "{} evaluated flow differs", alg.name());
        assert_eq!(
            a.algorithm_flow,
            b.algorithm_flow,
            "{} internal flow differs",
            alg.name()
        );
    }
}

#[test]
fn different_seeds_change_sampled_algorithms() {
    let g = PartitionedConfig::paper(200, 6).generate(22);
    let q = suggest_query(&g);
    let session = Session::new(&g);
    let run = |seed: u64| {
        session
            .query(q)
            .unwrap()
            .algorithm(Algorithm::Ft)
            .budget(12)
            .samples(100) // noisy on purpose
            .seed(seed)
            .run()
            .unwrap()
    };
    let a = run(1);
    let b = run(2);
    // Selections usually differ under heavy sampling noise; at minimum the
    // internal flow estimates must differ.
    assert!(
        a.selected != b.selected || a.algorithm_flow != b.algorithm_flow,
        "independent seeds produced identical runs"
    );
}

#[test]
fn generators_are_seed_stable_at_spec_level() {
    let specs = [
        DatasetSpec::Erdos(ErdosConfig::paper(100, 4.0)),
        DatasetSpec::Partitioned(PartitionedConfig::paper(120, 6)),
        DatasetSpec::Wsn(WsnConfig::paper(100, 0.1)),
    ];
    for spec in specs {
        let a = spec.build(5);
        let b = spec.build(5);
        assert_eq!(a.edge_count(), b.edge_count(), "{}", spec.name());
        for (id, e) in a.edges() {
            let e2 = b.edge(id);
            assert_eq!(e.endpoints(), e2.endpoints(), "{}", spec.name());
            assert_eq!(e.probability, e2.probability, "{}", spec.name());
        }
        for v in a.vertices() {
            assert_eq!(a.weight(v), b.weight(v), "{}", spec.name());
        }
    }
}

#[test]
fn parallel_estimator_is_thread_count_invariant() {
    let g = ErdosConfig::paper(300, 6.0).generate(31);
    let q = suggest_query(&g);
    let full = EdgeSubset::full(&g);
    let seq = SeedSequence::new(4242);
    // Budgets straddling the 64-lane batch width: single partial batch, one
    // exact batch, partial tail, many batches.
    for samples in [1u32, 64, 100, 1000] {
        let flow1 = ParallelEstimator::new(1).sample_flow(&g, &full, q, false, samples, &seq);
        let reach1 = ParallelEstimator::new(1).sample_reachability(&g, &full, q, samples, &seq);
        for threads in [2usize, 8] {
            let est = ParallelEstimator::new(threads);
            let flow_t = est.sample_flow(&g, &full, q, false, samples, &seq);
            let reach_t = est.sample_reachability(&g, &full, q, samples, &seq);
            // FlowEstimate comparison is bit-exact: mean, M2 and count.
            assert_eq!(flow1, flow_t, "flow, samples={samples} threads={threads}");
            assert_eq!(
                reach1, reach_t,
                "reach, samples={samples} threads={threads}"
            );
        }
    }
}

#[test]
fn solver_is_thread_count_invariant_for_naive_and_full_ft_stack() {
    let g = ErdosConfig::paper(150, 5.0).generate(77);
    let q = suggest_query(&g);
    for alg in [Algorithm::Naive, Algorithm::FtMCiDs] {
        let run = |threads: usize| {
            let session = Session::new(&g).with_threads(threads).with_seed(5);
            session
                .query(q)
                .unwrap()
                .algorithm(alg)
                .budget(6)
                .samples(200)
                .run()
                .unwrap()
        };
        let base = run(1);
        for threads in [2usize, 8] {
            let out = run(threads);
            assert_eq!(
                base.selected,
                out.selected,
                "{} selection differs at {threads} threads",
                alg.name()
            );
            assert_eq!(
                base.flow,
                out.flow,
                "{} evaluated flow differs at {threads} threads",
                alg.name()
            );
            assert_eq!(
                base.algorithm_flow,
                out.algorithm_flow,
                "{} internal flow differs at {threads} threads",
                alg.name()
            );
        }
    }
}

/// The wide-lane contract at the solver level: lane width (64, 256, or
/// 512 worlds per BFS block) is a pure throughput knob. Every algorithm
/// that samples must select the same edges and report bit-equal flows at
/// every supported width, at any thread count, because lane `w` of a wide
/// block draws the same RNG stream as lane `w` of narrow batches.
#[test]
fn solver_is_lane_width_invariant_at_any_thread_count() {
    let g = ErdosConfig::paper(150, 5.0).generate(77);
    let q = suggest_query(&g);
    for alg in [Algorithm::Naive, Algorithm::FtMCiDs] {
        let run = |threads: usize, lane_words: usize| {
            let session = Session::new(&g)
                .with_threads(threads)
                .with_lane_words(lane_words)
                .with_seed(5);
            session
                .query(q)
                .unwrap()
                .algorithm(alg)
                .budget(6)
                .samples(200)
                .run()
                .unwrap()
        };
        let base = run(1, 1);
        for threads in [1usize, 8] {
            for lane_words in [4usize, 8] {
                let out = run(threads, lane_words);
                assert_eq!(
                    base.selected,
                    out.selected,
                    "{} selection differs at width {lane_words}, {threads} threads",
                    alg.name()
                );
                assert_eq!(
                    base.flow,
                    out.flow,
                    "{} evaluated flow differs at width {lane_words}, {threads} threads",
                    alg.name()
                );
                assert_eq!(
                    base.algorithm_flow,
                    out.algorithm_flow,
                    "{} internal flow differs at width {lane_words}, {threads} threads",
                    alg.name()
                );
            }
        }
    }
}

/// The persistent-pool serving contract (satellite of the worker-pool PR):
/// the same `QuerySpec` must be bit-identical (a) on a fresh pool, (b)
/// after 100 unrelated jobs have warmed every worker's scratch arenas with
/// different graph shapes and sizes, and (c) at thread counts 1 and 8.
/// Scratch contents and pool history must never leak into results.
#[test]
fn pool_reuse_and_warm_scratch_never_change_results() {
    let g = ErdosConfig::paper(150, 5.0).generate(91);
    let q = suggest_query(&g);
    let run = |threads: usize| {
        Session::new(&g)
            .with_threads(threads)
            .with_seed(13)
            .query(q)
            .unwrap()
            .algorithm(Algorithm::FtMCiDs)
            .budget(6)
            .samples(200)
            .run()
            .unwrap()
    };
    let fresh = run(8);

    // 100 unrelated warmup jobs against a differently-shaped graph, with
    // varying budgets/samples/seeds, so every pooled worker re-targets its
    // warm scratch repeatedly before the replay.
    let warm_graph = PartitionedConfig::paper(80, 5).generate(7);
    let wq = suggest_query(&warm_graph);
    let warm_session = Session::new(&warm_graph).with_threads(8).with_seed(99);
    let warmup: Vec<_> = (0..100)
        .map(|i| {
            warm_session
                .query(wq)
                .unwrap()
                .algorithm(Algorithm::FtM)
                .budget(1 + i % 4)
                .samples(64 + (i as u32 % 5) * 64)
                .seed(1000 + i as u64)
                .spec()
        })
        .collect();
    assert_eq!(warm_session.run_many(&warmup).unwrap().len(), 100);

    let warmed = run(8);
    assert_eq!(fresh.selected, warmed.selected, "warm pool changed results");
    assert_eq!(fresh.flow, warmed.flow);
    assert_eq!(fresh.algorithm_flow, warmed.algorithm_flow);

    let single = run(1);
    assert_eq!(fresh.selected, single.selected, "thread count leaked");
    assert_eq!(fresh.flow, single.flow);
    assert_eq!(fresh.algorithm_flow, single.algorithm_flow);
}

/// The serve layer inherits the replay contract: the same submission
/// against a [`flowmax::core::FlowServer`] is bit-identical whether the
/// graph was just loaded or has served (and coalesced) other queries.
#[test]
fn served_replay_is_bit_identical_under_load() {
    use flowmax::core::{FlowServer, QueryParams, ServeConfig};

    let g = ErdosConfig::paper(120, 5.0).generate(55);
    let q = suggest_query(&g);
    let server = FlowServer::new(ServeConfig {
        threads: 4,
        ..ServeConfig::default()
    });
    let fp = server.load_graph(g.clone());
    let mut params = QueryParams::new(q, 5);
    params.samples = 200;
    let first = server.submit(fp, params).unwrap().wait().unwrap();

    // Unrelated load in between, including concurrent (coalescable) waves.
    let tickets: Vec<_> = (0..8)
        .map(|i| {
            let mut other = QueryParams::new(q, 1 + i % 3);
            other.samples = 100;
            other.seed = Some(500 + i as u64);
            server.submit(fp, other).unwrap()
        })
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }

    let replay = server.submit(fp, params).unwrap().wait().unwrap();
    assert_eq!(first.selected, replay.selected, "replay diverged");
    assert_eq!(first.flow, replay.flow);
    assert_eq!(first.steps.len(), replay.steps.len());

    // And the served result equals a direct session run of the same spec.
    let direct = Session::new(&g)
        .with_seed(42)
        .query(q)
        .unwrap()
        .budget(5)
        .samples(200)
        .run()
        .unwrap();
    assert_eq!(first.selected, direct.selected);
    assert_eq!(first.flow, direct.flow);
}

#[test]
fn dijkstra_is_fully_deterministic_regardless_of_seed() {
    let g = PartitionedConfig::paper(150, 6).generate(23);
    let q = suggest_query(&g);
    let session = Session::new(&g);
    let dijkstra = |seed: u64| {
        session
            .query(q)
            .unwrap()
            .algorithm(Algorithm::Dijkstra)
            .budget(10)
            .seed(seed)
            .run()
            .unwrap()
    };
    let a = dijkstra(1);
    let b = dijkstra(999);
    assert_eq!(a.selected, b.selected, "spanning trees ignore the seed");
}
